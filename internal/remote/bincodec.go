// Binary payload codecs for the hot remote frames: batched/streamed
// ingest, trigger-notification pushes, region queries, and stream
// acknowledgements. These are the payloads mwrpc carries with the
// flagBinaryPayload bit set after a connection negotiates the binary
// codec; everything else keeps the JSON DTOs.
//
// The encoders append into caller-owned buffers (mwrpc's pooled frame
// buffer on the send path, so steady-state encode allocates nothing)
// and work straight off model.Reading — no DTO slice, no RFC 3339
// formatting, no glob re-parse on the far side. GLOBs travel
// structurally (path segments + coordinate tuples); the decoder
// re-checks glob.Parse's segment invariants so a hand-crafted frame
// cannot smuggle in a GLOB the text parser would reject.
//
// Decoders never panic and never over-read: all cursor movement goes
// through mwrpc.BinReader, whose errors distinguish structural
// corruption (mwrpc.ErrTruncated / mwrpc.ErrCorrupt — the whole
// payload is dropped) from per-reading validation failures (that one
// reading is rejected, the rest of the batch proceeds — the same
// semantics the JSON path has for a bad RFC 3339 timestamp).
package remote

import (
	"errors"
	"fmt"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"middlewhere/internal/core"
	"middlewhere/internal/fusion"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
)

// structural reports whether a decode error means the payload itself
// is broken (abort) rather than one reading being invalid (reject).
func structural(err error) bool {
	return errors.Is(err, mwrpc.ErrTruncated) || errors.Is(err, mwrpc.ErrCorrupt)
}

// uvarintLen is the encoded size of v in unsigned LEB128.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// GLOB

// appendGLOB writes a GLOB structurally: path segment count + segments,
// coordinate count + tuples (flags byte, x, y, optional z).
func appendGLOB(b []byte, g glob.GLOB) []byte {
	b = mwrpc.AppendUvarint(b, uint64(len(g.Path)))
	for _, seg := range g.Path {
		b = mwrpc.AppendString(b, seg)
	}
	b = mwrpc.AppendUvarint(b, uint64(len(g.Coords)))
	for _, c := range g.Coords {
		if c.Has3D {
			b = append(b, 1)
			b = mwrpc.AppendF64(b, c.X)
			b = mwrpc.AppendF64(b, c.Y)
			b = mwrpc.AppendF64(b, c.Z)
		} else {
			b = append(b, 0)
			b = mwrpc.AppendF64(b, c.X)
			b = mwrpc.AppendF64(b, c.Y)
		}
	}
	return b
}

func globBinSize(g glob.GLOB) int {
	n := uvarintLen(uint64(len(g.Path))) + uvarintLen(uint64(len(g.Coords)))
	for _, seg := range g.Path {
		n += uvarintLen(uint64(len(seg))) + len(seg)
	}
	for _, c := range g.Coords {
		n += 1 + 16
		if c.Has3D {
			n += 8
		}
	}
	return n
}

// validSegment re-checks glob.Parse's segment invariants on decode.
func validSegment(seg string) error {
	if seg == "" {
		return fmt.Errorf("%w: empty segment", glob.ErrBadSegment)
	}
	if strings.ContainsAny(seg, "()/") {
		return fmt.Errorf("%w: segment %q", glob.ErrBadSegment, seg)
	}
	for _, r := range seg {
		if unicode.IsSpace(r) || unicode.IsControl(r) || r == unicode.ReplacementChar {
			return fmt.Errorf("%w: segment %q", glob.ErrBadSegment, seg)
		}
	}
	if !utf8.ValidString(seg) {
		return fmt.Errorf("%w: segment not UTF-8", glob.ErrBadSegment)
	}
	return nil
}

// readGLOB decodes a structural GLOB. Structural errors come back as
// mwrpc.ErrTruncated/ErrCorrupt; invariant violations as glob errors.
func readGLOB(r *mwrpc.BinReader) (glob.GLOB, error) {
	var g glob.GLOB
	np, err := r.Len(1)
	if err != nil {
		return g, err
	}
	if np > 0 {
		g.Path = make([]string, 0, np)
		for i := 0; i < np; i++ {
			seg, err := r.String()
			if err != nil {
				return glob.GLOB{}, err
			}
			g.Path = append(g.Path, seg)
		}
	}
	nc, err := r.Len(17)
	if err != nil {
		return glob.GLOB{}, err
	}
	if nc > 0 {
		g.Coords = make([]glob.Coord, 0, nc)
		for i := 0; i < nc; i++ {
			if r.Remaining() < 1 {
				return glob.GLOB{}, mwrpc.ErrTruncated
			}
			flags, _ := r.Uvarint()
			var c glob.Coord
			if c.X, err = r.F64(); err != nil {
				return glob.GLOB{}, err
			}
			if c.Y, err = r.F64(); err != nil {
				return glob.GLOB{}, err
			}
			if flags&1 != 0 {
				c.Has3D = true
				if c.Z, err = r.F64(); err != nil {
					return glob.GLOB{}, err
				}
			}
			g.Coords = append(g.Coords, c)
		}
	}
	// Validation (non-structural): same invariants glob.Parse enforces.
	if len(g.Path) == 0 && len(g.Coords) == 0 {
		return glob.GLOB{}, glob.ErrEmpty
	}
	for _, seg := range g.Path {
		if err := validSegment(seg); err != nil {
			return glob.GLOB{}, err
		}
	}
	return g, nil
}

// ---------------------------------------------------------------------------
// Readings (mw.ingestBatch request / stream batch payload)

// AppendReadings encodes a reading slice as a binary batch payload.
// Exported for the wire benchmarks and fuzz seed generation.
func AppendReadings(b []byte, rs []model.Reading) []byte {
	b = mwrpc.AppendUvarint(b, uint64(len(rs)))
	for i := range rs {
		r := &rs[i]
		b = mwrpc.AppendString(b, r.SensorID)
		b = mwrpc.AppendString(b, r.SensorType)
		b = mwrpc.AppendString(b, r.MObjectID)
		b = mwrpc.AppendF64(b, r.DetectionRadius)
		b = mwrpc.AppendI64(b, r.Time.UnixNano())
		b = appendGLOB(b, r.Location)
	}
	return b
}

// ReadingsBinSize is the exact encoded size of AppendReadings(nil, rs);
// the streaming client charges this many byte credits per batch (and
// the daemon grants back the received payload length, which matches).
func ReadingsBinSize(rs []model.Reading) int {
	n := uvarintLen(uint64(len(rs)))
	for i := range rs {
		r := &rs[i]
		n += uvarintLen(uint64(len(r.SensorID))) + len(r.SensorID)
		n += uvarintLen(uint64(len(r.SensorType))) + len(r.SensorType)
		n += uvarintLen(uint64(len(r.MObjectID))) + len(r.MObjectID)
		n += 8 + 8
		n += globBinSize(r.Location)
	}
	return n
}

// DecodeReadings decodes a binary batch payload. Structural corruption
// returns an error (nothing usable); a reading that fails GLOB
// validation is reported in rejected (by frame index) while the rest
// decode on. frameIdx maps each returned reading back to its index in
// the frame, mirroring the JSON handler's bookkeeping.
func DecodeReadings(payload []byte) (rs []model.Reading, frameIdx []int, rejected []RejectedReadingDTO, err error) {
	r := mwrpc.NewBinReader(payload)
	// A reading is at least 3 empty strings + radius + time + empty glob.
	n, err := r.Len(3 + 16 + 2)
	if err != nil {
		return nil, nil, nil, err
	}
	rs = make([]model.Reading, 0, n)
	frameIdx = make([]int, 0, n)
	for i := 0; i < n; i++ {
		var m model.Reading
		if m.SensorID, err = r.String(); err != nil {
			return nil, nil, nil, err
		}
		if m.SensorType, err = r.String(); err != nil {
			return nil, nil, nil, err
		}
		if m.MObjectID, err = r.String(); err != nil {
			return nil, nil, nil, err
		}
		if m.DetectionRadius, err = r.F64(); err != nil {
			return nil, nil, nil, err
		}
		var ns int64
		if ns, err = r.I64(); err != nil {
			return nil, nil, nil, err
		}
		m.Time = time.Unix(0, ns).UTC()
		g, gerr := readGLOB(r)
		if gerr != nil {
			if structural(gerr) {
				return nil, nil, nil, gerr
			}
			rejected = append(rejected, RejectedReadingDTO{
				Index: i, Error: fmt.Sprintf("remote: reading location: %v", gerr),
			})
			continue
		}
		m.Location = g
		rs = append(rs, m)
		frameIdx = append(frameIdx, i)
	}
	if r.Remaining() != 0 {
		return nil, nil, nil, mwrpc.ErrCorrupt
	}
	return rs, frameIdx, rejected, nil
}

// ---------------------------------------------------------------------------
// Ingest reply (mw.ingestBatch response / embedded in stream acks)

func appendRejected(b []byte, rejected []RejectedReadingDTO) []byte {
	b = mwrpc.AppendUvarint(b, uint64(len(rejected)))
	for _, rej := range rejected {
		b = mwrpc.AppendUvarint(b, uint64(rej.Index))
		b = mwrpc.AppendString(b, rej.Error)
	}
	return b
}

func readRejected(r *mwrpc.BinReader) ([]RejectedReadingDTO, error) {
	n, err := r.Len(2)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]RejectedReadingDTO, 0, n)
	for i := 0; i < n; i++ {
		idx, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		msg, err := r.String()
		if err != nil {
			return nil, err
		}
		out = append(out, RejectedReadingDTO{Index: int(idx), Error: msg})
	}
	return out, nil
}

// AppendIngestReply encodes an IngestBatchReply payload.
func AppendIngestReply(b []byte, rep IngestBatchReply) []byte {
	b = mwrpc.AppendUvarint(b, uint64(rep.Accepted))
	return appendRejected(b, rep.Rejected)
}

// DecodeIngestReply decodes an IngestBatchReply payload.
func DecodeIngestReply(payload []byte) (IngestBatchReply, error) {
	r := mwrpc.NewBinReader(payload)
	acc, err := r.Uvarint()
	if err != nil {
		return IngestBatchReply{}, err
	}
	rej, err := readRejected(r)
	if err != nil {
		return IngestBatchReply{}, err
	}
	return IngestBatchReply{Accepted: int(acc), Rejected: rej}, nil
}

// ---------------------------------------------------------------------------
// Notifications (mw.notify push)

// appendNotification encodes a trigger notification straight from the
// core form — the hot push path skips the DTO and its RFC 3339 string.
func appendNotification(b []byte, n core.Notification) []byte {
	b = mwrpc.AppendString(b, n.SubscriptionID)
	b = mwrpc.AppendString(b, n.Object)
	b = mwrpc.AppendF64(b, n.Region.Min.X)
	b = mwrpc.AppendF64(b, n.Region.Min.Y)
	b = mwrpc.AppendF64(b, n.Region.Max.X)
	b = mwrpc.AppendF64(b, n.Region.Max.Y)
	b = mwrpc.AppendF64(b, n.Prob)
	b = mwrpc.AppendUvarint(b, uint64(n.Band))
	b = mwrpc.AppendI64(b, n.At.UnixNano())
	b = mwrpc.AppendString(b, n.Trace)
	return b
}

// decodeNotification decodes a binary notification into the DTO form
// the client-side dispatch (and its replay guard) already speaks.
func decodeNotification(payload []byte) (NotificationDTO, error) {
	r := mwrpc.NewBinReader(payload)
	var n NotificationDTO
	var err error
	if n.SubscriptionID, err = r.String(); err != nil {
		return n, err
	}
	if n.Object, err = r.String(); err != nil {
		return n, err
	}
	if n.Region.MinX, err = r.F64(); err != nil {
		return n, err
	}
	if n.Region.MinY, err = r.F64(); err != nil {
		return n, err
	}
	if n.Region.MaxX, err = r.F64(); err != nil {
		return n, err
	}
	if n.Region.MaxY, err = r.F64(); err != nil {
		return n, err
	}
	if n.Prob, err = r.F64(); err != nil {
		return n, err
	}
	band, err := r.Uvarint()
	if err != nil {
		return n, err
	}
	n.Band = fusion.Band(band).String()
	ns, err := r.I64()
	if err != nil {
		return n, err
	}
	n.Time = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
	if n.Trace, err = r.String(); err != nil {
		return n, err
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Region queries (mw.probInRegion / mw.objectsInRegion)

func appendRegionQuery(b []byte, a regionQueryArgs) []byte {
	b = mwrpc.AppendString(b, a.Object)
	b = mwrpc.AppendString(b, a.Region)
	return mwrpc.AppendF64(b, a.MinProb)
}

func decodeRegionQuery(payload []byte) (regionQueryArgs, error) {
	r := mwrpc.NewBinReader(payload)
	var a regionQueryArgs
	var err error
	if a.Object, err = r.String(); err != nil {
		return a, err
	}
	if a.Region, err = r.String(); err != nil {
		return a, err
	}
	if a.MinProb, err = r.F64(); err != nil {
		return a, err
	}
	return a, nil
}

func appendProbReply(b []byte, prob float64, band string) []byte {
	b = mwrpc.AppendF64(b, prob)
	return mwrpc.AppendString(b, band)
}

func decodeProbReply(payload []byte) (probReply, error) {
	r := mwrpc.NewBinReader(payload)
	var out probReply
	var err error
	if out.Prob, err = r.F64(); err != nil {
		return out, err
	}
	if out.Band, err = r.String(); err != nil {
		return out, err
	}
	return out, nil
}

func appendObjectsReply(b []byte, objs map[string]float64) []byte {
	b = mwrpc.AppendUvarint(b, uint64(len(objs)))
	for obj, p := range objs {
		b = mwrpc.AppendString(b, obj)
		b = mwrpc.AppendF64(b, p)
	}
	return b
}

func decodeObjectsReply(payload []byte) (map[string]float64, error) {
	r := mwrpc.NewBinReader(payload)
	n, err := r.Len(9)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		obj, err := r.String()
		if err != nil {
			return nil, err
		}
		p, err := r.F64()
		if err != nil {
			return nil, err
		}
		out[obj] = p
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Stream acknowledgements

// streamAckDTO is the acknowledgement payload for one stream batch
// (JSON form; the binary form carries the same fields in order). The
// acked sequence number travels in the frame header.
type streamAckDTO struct {
	// Accepted is the CUMULATIVE count of readings stored on this
	// stream; BatchAccepted is this batch's contribution.
	Accepted      uint64 `json:"accepted"`
	BatchAccepted int    `json:"batchAccepted"`
	// Rejected lists this batch's per-reading rejections (PR-4
	// semantics: the rest of the batch was stored).
	Rejected []RejectedReadingDTO `json:"rejected,omitempty"`
	// CreditBatches/CreditBytes replenish the sender's credit window.
	CreditBatches int `json:"creditBatches"`
	CreditBytes   int `json:"creditBytes"`
	// Error reports a batch the daemon could not decode at all (the
	// batch was dropped wholesale; it will not be stored on resend).
	Error string `json:"error,omitempty"`
}

func appendStreamAck(b []byte, a streamAckDTO) []byte {
	b = mwrpc.AppendU64(b, a.Accepted)
	b = mwrpc.AppendUvarint(b, uint64(a.BatchAccepted))
	b = appendRejected(b, a.Rejected)
	b = mwrpc.AppendUvarint(b, uint64(a.CreditBatches))
	b = mwrpc.AppendUvarint(b, uint64(a.CreditBytes))
	return mwrpc.AppendString(b, a.Error)
}

func decodeStreamAck(payload []byte) (streamAckDTO, error) {
	r := mwrpc.NewBinReader(payload)
	var a streamAckDTO
	var err error
	if a.Accepted, err = r.U64(); err != nil {
		return a, err
	}
	ba, err := r.Uvarint()
	if err != nil {
		return a, err
	}
	a.BatchAccepted = int(ba)
	if a.Rejected, err = readRejected(r); err != nil {
		return a, err
	}
	cb, err := r.Uvarint()
	if err != nil {
		return a, err
	}
	cy, err := r.Uvarint()
	if err != nil {
		return a, err
	}
	a.CreditBatches, a.CreditBytes = int(cb), int(cy)
	if a.Error, err = r.String(); err != nil {
		return a, err
	}
	return a, nil
}
