package remote

import (
	"strings"
	"testing"
	"time"

	"middlewhere/internal/adapter"
	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

var t0 = time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)

// startStack brings up a Location Service behind an mwrpc server and
// returns a connected client.
func startStack(t *testing.T) (*LocationClient, *core.Service) {
	t.Helper()
	svc, err := core.New(building.PaperFloor(), core.WithClock(func() time.Time { return t0 }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c, err := DialLocation(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, svc
}

func TestRemoteSensorAndIngestAndLocate(t *testing.T) {
	c, _ := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("ubi-r", spec); err != nil {
		t.Fatal(err)
	}
	err := c.Ingest(model.Reading{
		SensorID:  "ubi-r",
		MObjectID: "alice",
		Location:  glob.MustParse("CS/Floor3/(370,15)"),
		Time:      t0,
	})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := c.Locate("alice")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic != "CS/Floor3/NetLab" {
		t.Errorf("symbolic = %s", loc.Symbolic)
	}
	if loc.Prob <= 0.5 {
		t.Errorf("prob = %v", loc.Prob)
	}
	if loc.Rect.MinX < 360 || loc.Rect.MaxX > 380 {
		t.Errorf("rect = %+v", loc.Rect)
	}
	if loc.Band == "" || loc.Time == "" {
		t.Errorf("incomplete DTO: %+v", loc)
	}
	// Remote adapters work through the client as a Sink/Registrar.
	ubi, err := adapter.NewUbisense("ubi-adapter", glob.MustParse("CS/Floor3"), 0.9, c, c, adapter.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ubi.ReportFix("bob", geom.Pt(340, 15), t0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Locate("bob"); err != nil {
		t.Errorf("locating via remote adapter: %v", err)
	}
}

func TestRemoteQueries(t *testing.T) {
	c, _ := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("s", spec); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(model.Reading{SensorID: "s", MObjectID: "alice",
		Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0}); err != nil {
		t.Fatal(err)
	}
	p, band, err := c.ProbInRegion("alice", "CS/Floor3/NetLab")
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.5 || band == "" {
		t.Errorf("prob = %v band = %s", p, band)
	}
	objs, err := c.ObjectsInRegion("CS/Floor3/NetLab", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := objs["alice"]; !ok {
		t.Errorf("objects = %v", objs)
	}
	// Errors propagate with context.
	if _, _, err := c.ProbInRegion("ghost", "CS/Floor3/NetLab"); err == nil ||
		!strings.Contains(err.Error(), "no readings") {
		t.Errorf("err = %v", err)
	}
}

func TestRemoteSubscriptionPush(t *testing.T) {
	c, _ := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("s", spec); err != nil {
		t.Fatal(err)
	}
	got := make(chan NotificationDTO, 4)
	id, err := c.Subscribe(SubscribeArgs{
		Region:  "CS/Floor3/NetLab",
		MinProb: 0.3,
	}, func(n NotificationDTO) { got <- n })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(model.Reading{SensorID: "s", MObjectID: "carol",
		Location: glob.MustParse("CS/Floor3/(370,15)"), Time: t0}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n.Object != "carol" || n.SubscriptionID != id || n.Prob < 0.3 {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no push received")
	}
	if err := c.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	// Unsubscribing again fails (no longer owned).
	if err := c.Unsubscribe(id); err == nil {
		t.Error("double unsubscribe should fail")
	}
}

func TestClientDisconnectCleansSubscriptions(t *testing.T) {
	svc, err := core.New(building.PaperFloor(), core.WithClock(func() time.Time { return t0 }))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialLocation(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(SubscribeArgs{Region: "CS/Floor3/NetLab"}, func(NotificationDTO) {}); err != nil {
		t.Fatal(err)
	}
	if svc.Subscriptions() != 1 {
		t.Fatalf("subscriptions = %d", svc.Subscriptions())
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for svc.Subscriptions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not cleaned up after disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRemoteSpatialRelations(t *testing.T) {
	c, _ := startStack(t)
	rel, pass, err := c.Relate("CS/Floor3/NetLab", "CS/Floor3/MainCorridor")
	if err != nil {
		t.Fatal(err)
	}
	if rel != "EC" || pass != "ECFP" {
		t.Errorf("relate = %s %s", rel, pass)
	}
	rt, err := c.Route("CS/Floor3/NetLab", "CS/Floor3/HCILab", "free")
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Regions) != 3 || rt.Length <= 0 {
		t.Errorf("route = %+v", rt)
	}
	// Locked room requires the restricted policy.
	if _, err := c.Route("CS/Floor3/NetLab", "CS/Floor3/3105", "free"); err == nil {
		t.Error("free route into locked room should fail")
	}
	if _, err := c.Route("CS/Floor3/NetLab", "CS/Floor3/3105", "restricted"); err != nil {
		t.Errorf("restricted route failed: %v", err)
	}
}

func TestRemoteObjectRelations(t *testing.T) {
	c, _ := startStack(t)
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("s", spec); err != nil {
		t.Fatal(err)
	}
	for _, fix := range []struct {
		obj  string
		x, y float64
	}{{"nina", 370, 15}, {"omar", 372, 15}} {
		if err := c.Ingest(model.Reading{SensorID: "s", MObjectID: fix.obj,
			Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"), geom.Pt(fix.x, fix.y)),
			Time:     t0}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := c.Proximity("nina", "omar", 5)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.3 {
		t.Errorf("proximity = %v", p)
	}
	ok, pj, err := c.CoLocated("nina", "omar", "room")
	if err != nil || !ok || pj <= 0 {
		t.Errorf("coLocated = %v %v %v", ok, pj, err)
	}
}

func TestDTORoundTrips(t *testing.T) {
	// Reading.
	r := model.Reading{
		SensorID: "s1", SensorType: "ubisense", MObjectID: "p",
		Location:        glob.MustParse("CS/Floor3/(1,2)"),
		DetectionRadius: 0.5,
		Time:            t0,
	}
	back, err := toReadingDTO(r).toReading()
	if err != nil {
		t.Fatal(err)
	}
	if back.SensorID != r.SensorID || !back.Location.Equal(r.Location) ||
		!back.Time.Equal(r.Time) || back.DetectionRadius != r.DetectionRadius {
		t.Errorf("reading round trip: %+v", back)
	}
	// Bad DTOs fail.
	if _, err := (ReadingDTO{Location: "((", Time: "bad"}).toReading(); err == nil {
		t.Error("bad location should fail")
	}
	if _, err := (ReadingDTO{Location: "CS/1/(1,2)", Time: "bad"}).toReading(); err == nil {
		t.Error("bad time should fail")
	}

	// Specs with every tdf kind.
	specs := []model.SensorSpec{
		model.UbisenseSpec(0.9),
		model.RFIDSpec(0.8),
		model.BiometricShortSpec(),
		model.CardReaderSpec(glob.MustParse("CS/Floor3/3105")),
	}
	for _, spec := range specs {
		got, err := toSpecDTO(spec).toSpec()
		if err != nil {
			t.Fatalf("%s: %v", spec.Type, err)
		}
		if got.Type != spec.Type || got.Errors != spec.Errors || got.TTL != spec.TTL {
			t.Errorf("%s spec round trip: %+v vs %+v", spec.Type, got, spec)
		}
		if got.Resolution.Kind != spec.Resolution.Kind {
			t.Errorf("%s resolution kind mismatch", spec.Type)
		}
		// TDF behaviour survives (compare at a probe point).
		p1 := spec.TDFOrDefault().Degrade(0.8, 7*time.Second)
		p2 := got.TDFOrDefault().Degrade(0.8, 7*time.Second)
		if p1 != p2 {
			t.Errorf("%s tdf round trip: %v vs %v", spec.Type, p1, p2)
		}
	}
}

func TestRemoteQueryLanguage(t *testing.T) {
	c, _ := startStack(t)
	// The paper's §5.1 example over the wire.
	objs, err := c.Query(`SELECT objects
		WHERE prop('power-outlets') = 'yes' AND prop('bluetooth') = 'high'
		NEAREST (0, 0) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].GLOB != "CS/Floor3/NetLab" {
		t.Fatalf("query = %+v", objs)
	}
	if objs[0].Type != "Room" || objs[0].Properties["bluetooth"] != "high" {
		t.Errorf("object DTO = %+v", objs[0])
	}
	if objs[0].Bounds.MinX != 360 || objs[0].Bounds.MaxX != 380 {
		t.Errorf("bounds = %+v", objs[0].Bounds)
	}
	// Syntax errors propagate.
	if _, err := c.Query(`SELECT people`); err == nil {
		t.Error("bad query should fail")
	}
}

func TestRemoteDistributionHistoryAndRegions(t *testing.T) {
	// A service with history enabled behind the full stack.
	svc, err := core.New(building.PaperFloor(),
		core.WithClock(func() time.Time { return t0 }), core.WithHistory(8))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialLocation(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("s", spec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Ingest(model.Reading{SensorID: "s", MObjectID: "zed",
			Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"),
				geom.Pt(370+float64(i), 15)),
			Time: t0.Add(time.Duration(i) * time.Second)}); err != nil {
			t.Fatal(err)
		}
	}
	// Distribution.
	cells, err := c.Distribution("zed")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("empty distribution")
	}
	var total float64
	for _, cell := range cells {
		total += cell.Prob
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("distribution sums to %v", total)
	}
	// History.
	trail, err := c.History("zed")
	if err != nil {
		t.Fatal(err)
	}
	if len(trail) != 3 {
		t.Errorf("trail = %d entries", len(trail))
	}
	// Remote region definition feeds straight into queries.
	if err := c.DefineRegion("CS/Floor3/NetLab/corner",
		[][2]float64{{0, 0}, {8, 0}, {8, 8}, {0, 8}}, nil); err != nil {
		t.Fatal(err)
	}
	p, _, err := c.ProbInRegion("zed", "CS/Floor3/NetLab/corner")
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 {
		t.Errorf("prob in defined region = %v", p)
	}
	// Errors propagate.
	if _, err := c.Distribution("ghost"); err == nil {
		t.Error("unknown object should fail")
	}
	if err := c.DefineRegion("((", nil, nil); err == nil {
		t.Error("bad GLOB should fail")
	}
}
