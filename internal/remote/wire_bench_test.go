// Wire-protocol benchmarks backing BENCH_3.json: codec encode/decode
// cost, end-to-end RPC ingest per codec, and pipelined streaming
// ingest. `make bench-compare` re-runs the recorded ones and enforces
// both the 30% regression tolerance and the cross-benchmark speedup
// gate (streaming binary ingest must stay >= 2x cheaper per reading
// than the JSON request/response batch-64 path).
package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"middlewhere/internal/building"
	"middlewhere/internal/core"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
)

// wireBenchReadings builds a batch of n coordinate readings from one
// registered sensor — the shape adapters emit on the hot path.
func wireBenchReadings(n int) []model.Reading {
	rs := make([]model.Reading, n)
	for i := range rs {
		rs[i] = model.Reading{
			SensorID:        "s0",
			SensorType:      "ubisense",
			MObjectID:       fmt.Sprintf("m%d", i%8),
			Location:        glob.MustParse(fmt.Sprintf("CS/Floor3/(%d,%d)", 10+i%400, 50)),
			DetectionRadius: 0.15,
			Time:            t0,
		}
	}
	return rs
}

var wireBenchCodecs = []struct {
	name string
	wire mwrpc.WirePref
}{
	{"binary", mwrpc.WireBinary},
	{"json", mwrpc.WireJSON},
}

// BenchmarkWireEncode measures pure payload encoding per codec: the
// binary appender into a pooled buffer vs the DTO conversion plus
// json.Marshal the JSON envelope pays.
func BenchmarkWireEncode(b *testing.B) {
	for _, size := range []int{1, 16, 64} {
		rs := wireBenchReadings(size)
		b.Run(fmt.Sprintf("binary/batch-%d", size), func(b *testing.B) {
			buf := mwrpc.GetBuf()
			defer buf.Free()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.B = AppendReadings(buf.B[:0], rs)
			}
		})
		b.Run(fmt.Sprintf("json/batch-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				args := IngestBatchArgs{Readings: make([]ReadingDTO, 0, len(rs))}
				for _, r := range rs {
					args.Readings = append(args.Readings, toReadingDTO(r))
				}
				if _, err := json.Marshal(args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireDecode measures the daemon-side payload parse,
// including the per-reading validation both codecs share.
func BenchmarkWireDecode(b *testing.B) {
	for _, size := range []int{1, 16, 64} {
		rs := wireBenchReadings(size)
		binPayload := AppendReadings(nil, rs)
		args := IngestBatchArgs{Readings: make([]ReadingDTO, 0, len(rs))}
		for _, r := range rs {
			args.Readings = append(args.Readings, toReadingDTO(r))
		}
		jsonPayload, err := json.Marshal(args)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("binary/batch-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dec, _, rejected, err := DecodeReadings(binPayload)
				if err != nil || len(rejected) != 0 || len(dec) != size {
					b.Fatalf("decode: %d readings, %d rejected, err %v", len(dec), len(rejected), err)
				}
			}
		})
		b.Run(fmt.Sprintf("json/batch-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var a IngestBatchArgs
				if err := json.Unmarshal(jsonPayload, &a); err != nil {
					b.Fatal(err)
				}
				dec, _, rejected := decodeDTOBatch(a.Readings, "")
				if len(rejected) != 0 || len(dec) != size {
					b.Fatalf("decode: %d readings, %d rejected", len(dec), len(rejected))
				}
			}
		})
	}
}

// benchWireStack starts a daemon and dials it with the requested
// codec pinned (the daemon negotiates, so "binary" here means the
// strict form — the benchmark must not silently measure JSON).
func benchWireStack(b *testing.B, wire mwrpc.WirePref) *LocationClient {
	b.Helper()
	b.Setenv(mwrpc.WireEnv, "") // daemon side: negotiate, accept either
	svc, err := core.New(building.PaperFloor(), core.WithClock(func() time.Time { return t0 }))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	srv := NewServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	c, err := DialLocationOptions(addr, DialOptions{Wire: wire})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Hour
	if err := c.RegisterSensor("s0", spec); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkWireRPCIngest is the end-to-end request/response ingest
// path per codec: one mw.ingestBatch round trip per op, the client
// blocked until the daemon stored the batch and replied.
func BenchmarkWireRPCIngest(b *testing.B) {
	for _, codec := range wireBenchCodecs {
		for _, size := range []int{1, 64} {
			b.Run(fmt.Sprintf("%s/size-%d", codec.name, size), func(b *testing.B) {
				c := benchWireStack(b, codec.wire)
				batch := wireBenchReadings(size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.IngestBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(size), "readings/op")
			})
		}
	}
}

// BenchmarkWireStreamIngest is the pipelined path: batches ride
// fire-and-forget stream frames inside the credit window, so the
// steady-state cost per op is the daemon's processing rate, not the
// round-trip latency. When credits run dry the loop waits for acks —
// that stall is real backpressure and stays inside the measurement.
func BenchmarkWireStreamIngest(b *testing.B) {
	for _, codec := range wireBenchCodecs {
		b.Run(codec.name+"/size-64", func(b *testing.B) {
			c := benchWireStack(b, codec.wire)
			st, err := c.OpenIngestStream()
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			batch := wireBenchReadings(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for {
					err := st.Send(batch)
					if err == nil {
						break
					}
					if errors.Is(err, mwrpc.ErrNoCredit) {
						// Sleep, don't spin: a Gosched loop contends the
						// stream lock against the very reader goroutine
						// whose acks replenish the window.
						time.Sleep(20 * time.Microsecond)
						continue
					}
					b.Fatal(err)
				}
			}
			if err := st.Flush(time.Minute); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(64, "readings/op")
		})
	}
}
