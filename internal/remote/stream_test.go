package remote

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/adapter"
	"middlewhere/internal/faultnet"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
)

func registerStreamSensor(t *testing.T, c *LocationClient, id string) {
	t.Helper()
	spec := model.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := c.RegisterSensor(id, spec)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("RegisterSensor never succeeded: %v", err)
		}
	}
}

func streamReading(sensor, obj string, at time.Time) model.Reading {
	return model.Reading{
		SensorID: sensor, MObjectID: obj,
		Location: glob.MustParse("CS/Floor3/(370,15)"), Time: at,
	}
}

// TestStreamPerReadingRejection: a stream batch with one bad reading
// stores the rest and surfaces the rejection through OnReject with the
// original frame index — the same PR-4 contract mw.ingestBatch has.
func TestStreamPerReadingRejection(t *testing.T) {
	c, svc := startStack(t)
	registerStreamSensor(t, c, "st-s")
	st, err := c.OpenIngestStream()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var mu sync.Mutex
	var rejects []RejectedReadingDTO
	st.OnReject(func(rs []RejectedReadingDTO) {
		mu.Lock()
		rejects = append(rejects, rs...)
		mu.Unlock()
	})

	batch := []model.Reading{
		streamReading("st-s", "ok-1", t0),
		streamReading("ghost", "bad", t0), // unknown sensor: rejected
		streamReading("st-s", "ok-2", t0),
	}
	if err := st.Send(batch); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Accepted != 2 || stats.Rejected != 1 {
		t.Errorf("stats = %+v, want 2 accepted / 1 rejected", stats)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rejects) != 1 || rejects[0].Index != 1 {
		t.Fatalf("rejects = %+v, want one at index 1", rejects)
	}
	if got := svc.Health().Ingested; got != 2 {
		t.Errorf("service ingested %d, want 2", got)
	}
}

// TestStreamDuplicateSeqNotRestored drives the wire protocol directly:
// re-sending an already-acked sequence number must re-ack (so the
// sender's pending table drains) without storing the batch again.
func TestStreamDuplicateSeqNotRestored(t *testing.T) {
	c, svc := startStack(t)
	registerStreamSensor(t, c, "dup-s")

	rpc, err := mwrpc.Dial(c.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rpc.Close()
	acks := make(chan streamAckDTO, 4)
	rpc.OnStreamAck(func(id, seq uint64, payload []byte, binary bool) {
		var a streamAckDTO
		var err error
		if binary {
			a, err = decodeStreamAck(payload)
		} else {
			err = json.Unmarshal(payload, &a)
		}
		if err != nil {
			t.Errorf("ack decode: %v", err)
			return
		}
		acks <- a
	})
	var open streamOpenReply
	if err := rpc.Call("mw.streamOpen", struct{}{}, &open); err != nil {
		t.Fatal(err)
	}
	batch := []model.Reading{
		streamReading("dup-s", "dup-a", t0),
		streamReading("dup-s", "dup-b", t0),
	}
	// Send in whichever codec the connection negotiated (the daemon may
	// be pinned to JSON by the compat matrix's MW_WIRE knob).
	send := func() error {
		if rpc.Codec() == mwrpc.CodecBinary {
			return rpc.StreamSend(open.StreamID, 1, func(b []byte) []byte {
				return AppendReadings(b, batch)
			}, nil)
		}
		args := IngestBatchArgs{Readings: make([]ReadingDTO, 0, len(batch))}
		for _, r := range batch {
			args.Readings = append(args.Readings, toReadingDTO(r))
		}
		body, err := json.Marshal(args)
		if err != nil {
			return err
		}
		return rpc.StreamSend(open.StreamID, 1, nil, body)
	}
	for i := 0; i < 2; i++ { // same seq twice
		if err := send(); err != nil {
			t.Fatal(err)
		}
	}
	var first, second streamAckDTO
	select {
	case first = <-acks:
	case <-time.After(5 * time.Second):
		t.Fatal("first ack never arrived")
	}
	select {
	case second = <-acks:
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate ack never arrived")
	}
	if first.Accepted != 2 || first.BatchAccepted != 2 {
		t.Errorf("first ack = %+v, want 2/2", first)
	}
	if second.Accepted != 2 || second.BatchAccepted != 0 {
		t.Errorf("duplicate ack = %+v, want cumulative 2, batch 0", second)
	}
	if got := svc.Health().Ingested; got != 2 {
		t.Errorf("service ingested %d, want 2 (duplicate was re-stored)", got)
	}
}

// TestStreamReconnectResends: a mid-stream disconnect must not lose
// unacked batches — the stream re-opens on the new connection and
// resends them (at-least-once).
func TestStreamReconnectResends(t *testing.T) {
	// Delay holds acks in the proxy so the kill provably lands before
	// the in-flight batch's ack reaches the client.
	c, proxy, _ := startChaosStack(t, faultnet.Config{Seed: 11, Delay: 50 * time.Millisecond}, chaosOpts(11))
	registerStreamSensor(t, c, "rc-s")
	st, err := c.OpenIngestStream()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := st.Send([]model.Reading{streamReading("rc-s", "rc-0", t0)}); err != nil {
		t.Fatal(err)
	}
	proxy.KillConnections() // the ack (and possibly the batch) is lost

	if err := st.Flush(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Resends < 1 {
		t.Errorf("resends = %d, want >= 1", stats.Resends)
	}
	if stats.Unacked != 0 {
		t.Errorf("unacked = %d after flush", stats.Unacked)
	}
	// The reading landed despite the disconnect.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if loc, err := c.Locate("rc-0"); err == nil && loc.Symbolic != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rc-0 never became locatable after the resend")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamBackpressureCreditStall throttles the daemon link so acks
// lag, exhausting the client's credit window. The ResilientSink on top
// must absorb the stall — buffering and counting CreditStalls, breaker
// closed — and drain completely once credits replenish, storing every
// reading exactly once (no resends happened, so the count is exact).
func TestStreamBackpressureCreditStall(t *testing.T) {
	c, _, svc := startChaosStack(t, faultnet.Config{Seed: 13, Delay: 20 * time.Millisecond}, chaosOpts(13))
	registerStreamSensor(t, c, "bp-s")
	st, err := c.OpenIngestStream()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sink := adapter.NewResilientSink(st, adapter.ResilientOptions{
		BufferSize:    4096,
		RetryInterval: 2 * time.Millisecond,
	})
	defer sink.Close()

	// Fire well past the 32-batch credit window faster than the
	// throttled acks can replenish it.
	const batches, perBatch = 48, 2
	for i := 0; i < batches; i++ {
		batch := make([]model.Reading, 0, perBatch)
		for j := 0; j < perBatch; j++ {
			batch = append(batch, streamReading("bp-s",
				fmt.Sprintf("bp-%d-%d", i, j), t0.Add(time.Duration(i)*time.Second)))
		}
		if err := sink.IngestBatch(batch); err != nil {
			t.Fatalf("resilient ingest %d: %v", i, err)
		}
	}

	if !sink.Flush(30 * time.Second) {
		t.Fatalf("resilient sink never drained: %+v", sink.Stats())
	}
	if err := st.Flush(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	rstats := sink.Stats()
	if rstats.CreditStalls < 1 {
		t.Errorf("credit stalls = %d, want >= 1 (window never exhausted?)", rstats.CreditStalls)
	}
	if rstats.BreakerOpens != 0 {
		t.Errorf("breaker opened %d times during backpressure, want 0", rstats.BreakerOpens)
	}
	if rstats.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 (buffer was large enough)", rstats.Dropped)
	}
	sstats := st.Stats()
	if sstats.Resends != 0 {
		t.Errorf("resends = %d, want 0 (no disconnect happened)", sstats.Resends)
	}
	const total = batches * perBatch
	if sstats.Accepted != total {
		t.Errorf("stream accepted %d, want %d", sstats.Accepted, total)
	}
	// Exactly once: no reconnect, no resend, so the service-side count
	// matches the send count with no duplicates.
	if got := svc.Health().Ingested; got != total {
		t.Errorf("service ingested %d, want exactly %d", got, total)
	}
}
