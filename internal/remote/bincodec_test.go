package remote

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"middlewhere/internal/core"
	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
)

func binTestReadings() []model.Reading {
	at := time.Date(2026, 8, 8, 9, 30, 0, 123456789, time.UTC)
	return []model.Reading{
		{ // coordinate fix with radius
			SensorID: "ubi-1", SensorType: "ubisense", MObjectID: "alice",
			Location:        glob.MustParse("CS/Floor3/(370,15)"),
			DetectionRadius: 0.15, Time: at,
		},
		{ // symbolic, no coords
			SensorID: "rf-2", SensorType: "rfbadge", MObjectID: "bob",
			Location: glob.MustParse("CS/Floor3/Room3230"), Time: at.Add(time.Second),
		},
		{ // 3D coordinate, unicode object name
			SensorID: "gps-3", SensorType: "gps", MObjectID: "búho",
			Location: glob.MustParse("Campus/(88.5,-12.25,3.5)"),
			Time:     at.Add(2 * time.Second),
		},
	}
}

// TestReadingsBinSizeMatchesEncoding: the credit accounting depends on
// ReadingsBinSize being exactly len(AppendReadings) — the client
// charges the computed size, the daemon grants back the received
// payload length, and any drift would leak or strand credits.
func TestReadingsBinSizeMatchesEncoding(t *testing.T) {
	cases := [][]model.Reading{
		nil,
		{},
		binTestReadings(),
		binTestReadings()[:1],
		{{Location: glob.MustParse("X/(0,0)")}}, // empty strings, zero time
	}
	for i, rs := range cases {
		enc := AppendReadings(nil, rs)
		if got, want := ReadingsBinSize(rs), len(enc); got != want {
			t.Errorf("case %d: ReadingsBinSize = %d, encoded length = %d", i, got, want)
		}
	}
}

// TestReadingsRoundTrip: every field survives the binary codec,
// including sub-second timestamps and 3D coordinates.
func TestReadingsRoundTrip(t *testing.T) {
	in := binTestReadings()
	dec, frameIdx, rejected, err := DecodeReadings(AppendReadings(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) != 0 {
		t.Fatalf("rejected = %+v", rejected)
	}
	if len(dec) != len(in) {
		t.Fatalf("decoded %d readings, want %d", len(dec), len(in))
	}
	for i := range in {
		if frameIdx[i] != i {
			t.Errorf("frameIdx[%d] = %d", i, frameIdx[i])
		}
		if !dec[i].Time.Equal(in[i].Time) {
			t.Errorf("reading %d time = %v, want %v", i, dec[i].Time, in[i].Time)
		}
		// Normalize times for the deep compare (Equal vs. ==).
		dec[i].Time = in[i].Time
		if !reflect.DeepEqual(dec[i], in[i]) {
			t.Errorf("reading %d = %+v, want %+v", i, dec[i], in[i])
		}
	}
}

// TestDecodeReadingsRejectsBadGLOB: a hand-crafted payload whose GLOB
// violates the text parser's invariants is rejected per reading — the
// binary path cannot smuggle in segments glob.Parse would refuse.
func TestDecodeReadingsRejectsBadGLOB(t *testing.T) {
	good := binTestReadings()[:1]
	bad := model.Reading{
		SensorID: "s", SensorType: "t", MObjectID: "o",
		Location: glob.GLOB{Path: []string{"has space"}}, // invalid segment
		Time:     time.Unix(0, 0),
	}
	payload := AppendReadings(nil, append(append([]model.Reading{}, good...), bad))
	rs, frameIdx, rejected, err := DecodeReadings(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(frameIdx) != 1 || frameIdx[0] != 0 {
		t.Fatalf("decoded = %d readings (idx %v), want just the good one", len(rs), frameIdx)
	}
	if len(rejected) != 1 || rejected[0].Index != 1 {
		t.Fatalf("rejected = %+v, want index 1", rejected)
	}
	if !strings.Contains(rejected[0].Error, "segment") {
		t.Errorf("rejection reason = %q", rejected[0].Error)
	}
}

// TestDecodeReadingsTrailingGarbage: extra bytes after the last
// reading mean the payload is corrupt, not silently ignored.
func TestDecodeReadingsTrailingGarbage(t *testing.T) {
	payload := append(AppendReadings(nil, binTestReadings()), 0xFF)
	if _, _, _, err := DecodeReadings(payload); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}

// TestNotificationRoundTrip: the binary push decodes into the same DTO
// the JSON path produces, so the client replay guard fingerprints
// (Time|Prob|Band) stay stable across codecs.
func TestNotificationRoundTrip(t *testing.T) {
	at := time.Date(2026, 8, 8, 10, 0, 0, 987654321, time.UTC)
	n := core.Notification{
		SubscriptionID: "sub-7", Object: "alice",
		Region: geom.Rect{Min: geom.Pt(1, 2), Max: geom.Pt(3, 4)},
		Prob:   0.875, Band: fusion.Band(2), At: at, Trace: "tr-1",
	}
	dec, err := decodeNotification(appendNotification(nil, n))
	if err != nil {
		t.Fatal(err)
	}
	want := toNotificationDTO(n)
	if !reflect.DeepEqual(dec, want) {
		t.Errorf("binary notification = %+v, want JSON-path form %+v", dec, want)
	}
}

// TestStreamAckRoundTrip covers the remaining ack fields end to end.
func TestStreamAckRoundTrip(t *testing.T) {
	in := streamAckDTO{
		Accepted: 129, BatchAccepted: 64,
		Rejected:      []RejectedReadingDTO{{Index: 3, Error: "unknown sensor"}, {Index: 9, Error: "bad glob"}},
		CreditBatches: 1, CreditBytes: 4096, Error: "",
	}
	out, err := decodeStreamAck(appendStreamAck(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("ack round trip = %+v, want %+v", out, in)
	}
}

// TestRegionQueryRoundTrip covers the query-payload codecs.
func TestRegionQueryRoundTrip(t *testing.T) {
	in := regionQueryArgs{Object: "alice", Region: "CS/Floor3/NetLab", MinProb: 0.25}
	out, err := decodeRegionQuery(appendRegionQuery(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("region query round trip = %+v, want %+v", out, in)
	}
	objs := map[string]float64{"alice": 0.9, "bob": 0.4}
	dec, err := decodeObjectsReply(appendObjectsReply(nil, objs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, objs) {
		t.Errorf("objects reply round trip = %v, want %v", dec, objs)
	}
	pr, err := decodeProbReply(appendProbReply(nil, 0.75, "high"))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Prob != 0.75 || pr.Band != "high" {
		t.Errorf("prob reply = %+v", pr)
	}
}

// TestBinaryEncodeSteadyStateAllocs: with a pooled buffer, encoding a
// batch into a reused frame buffer must not allocate.
func TestBinaryEncodeSteadyStateAllocs(t *testing.T) {
	rs := binTestReadings()
	buf := mwrpc.GetBuf()
	defer buf.Free()
	buf.B = AppendReadings(buf.B[:0], rs) // warm the buffer to capacity
	allocs := testing.AllocsPerRun(100, func() {
		buf.B = AppendReadings(buf.B[:0], rs)
	})
	if allocs != 0 {
		t.Errorf("steady-state encode allocates %.1f times per batch, want 0", allocs)
	}
}
