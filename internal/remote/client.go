package remote

import (
	"encoding/json"
	"sync"

	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
)

// LocationClient is the application-side handle to a remote Location
// Service. It satisfies adapter.Sink and adapter.Registrar, so
// adapters can run on machines other than the service (as the paper's
// CORBA adapters do).
type LocationClient struct {
	rpc *mwrpc.Client

	mu       sync.Mutex
	handlers map[string]func(NotificationDTO)
}

// DialLocation connects to a remote Location Service.
func DialLocation(addr string) (*LocationClient, error) {
	c, err := mwrpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	lc := &LocationClient{rpc: c, handlers: make(map[string]func(NotificationDTO))}
	c.OnPush(NotifyStream, lc.onNotify)
	return lc, nil
}

// Close drops the connection (server-side subscriptions owned by this
// connection are cleaned up by the server).
func (c *LocationClient) Close() { c.rpc.Close() }

func (c *LocationClient) onNotify(payload json.RawMessage) {
	var n NotificationDTO
	if err := json.Unmarshal(payload, &n); err != nil {
		return
	}
	c.mu.Lock()
	fn := c.handlers[n.SubscriptionID]
	c.mu.Unlock()
	if fn != nil {
		fn(n)
	}
}

// Ingest forwards a sensor reading (adapter.Sink).
func (c *LocationClient) Ingest(r model.Reading) error {
	return c.rpc.Call("mw.ingest", toReadingDTO(r), nil)
}

// RegisterSensor registers a sensor calibration (adapter.Registrar).
func (c *LocationClient) RegisterSensor(sensorID string, spec model.SensorSpec) error {
	return c.rpc.Call("mw.registerSensor", registerSensorArgs{
		SensorID: sensorID,
		Spec:     toSpecDTO(spec),
	}, nil)
}

// Locate asks where an object is.
func (c *LocationClient) Locate(object string) (LocationDTO, error) {
	var out LocationDTO
	err := c.rpc.Call("mw.locate", objectArgs{Object: object}, &out)
	return out, err
}

// ProbInRegion asks for the probability that an object is in a region
// (GLOB string).
func (c *LocationClient) ProbInRegion(object, region string) (prob float64, band string, err error) {
	var out probReply
	err = c.rpc.Call("mw.probInRegion", regionQueryArgs{Object: object, Region: region}, &out)
	return out.Prob, out.Band, err
}

// ObjectsInRegion asks who is in a region with at least minProb.
func (c *LocationClient) ObjectsInRegion(region string, minProb float64) (map[string]float64, error) {
	var out map[string]float64
	err := c.rpc.Call("mw.objectsInRegion", regionQueryArgs{Region: region, MinProb: minProb}, &out)
	return out, err
}

// Subscribe registers a notification condition; handler runs on the
// client's push-reader goroutine. It returns the subscription ID.
func (c *LocationClient) Subscribe(args SubscribeArgs, handler func(NotificationDTO)) (string, error) {
	var out subscribeReply
	if err := c.rpc.Call("mw.subscribe", args, &out); err != nil {
		return "", err
	}
	c.mu.Lock()
	c.handlers[out.SubscriptionID] = handler
	c.mu.Unlock()
	return out.SubscriptionID, nil
}

// Unsubscribe removes a subscription.
func (c *LocationClient) Unsubscribe(id string) error {
	c.mu.Lock()
	delete(c.handlers, id)
	c.mu.Unlock()
	return c.rpc.Call("mw.unsubscribe", unsubscribeArgs{SubscriptionID: id}, nil)
}

// Relate returns the RCC-8 relation and passage between two regions.
func (c *LocationClient) Relate(a, b string) (relation, passage string, err error) {
	var out relateReply
	err = c.rpc.Call("mw.relate", relateArgs{A: a, B: b}, &out)
	return out.Relation, out.Passage, err
}

// Route returns the shortest route between two regions; policy is
// "free" or "restricted".
func (c *LocationClient) Route(from, to, policy string) (RouteReply, error) {
	var out RouteReply
	err := c.rpc.Call("mw.route", routeArgs{From: from, To: to, Policy: policy}, &out)
	return out, err
}

// Proximity returns the probability two objects are within threshold.
func (c *LocationClient) Proximity(a, b string, threshold float64) (float64, error) {
	var out probReply
	err := c.rpc.Call("mw.proximity", proximityArgs{A: a, B: b, Threshold: threshold}, &out)
	return out.Prob, err
}

// CoLocated reports whether two objects share a region at granularity
// "building", "floor", or "room".
func (c *LocationClient) CoLocated(a, b, granularity string) (bool, float64, error) {
	var out coLocatedReply
	err := c.rpc.Call("mw.coLocated", coLocatedArgs{A: a, B: b, Granularity: granularity}, &out)
	return out.CoLocated, out.Prob, err
}

// Query runs an mwql statement ("SELECT objects WHERE ...") against
// the service's spatial database.
func (c *LocationClient) Query(query string) ([]ObjectDTO, error) {
	var out []ObjectDTO
	err := c.rpc.Call("mw.query", queryArgs{Query: query}, &out)
	return out, err
}

// Distribution fetches an object's full spatial posterior.
func (c *LocationClient) Distribution(object string) ([]RegionProbDTO, error) {
	var out []RegionProbDTO
	err := c.rpc.Call("mw.distribution", distributionArgs{Object: object}, &out)
	return out, err
}

// History fetches an object's recorded location trail (requires the
// service to run with history enabled).
func (c *LocationClient) History(object string) ([]LocationDTO, error) {
	var out []LocationDTO
	err := c.rpc.Call("mw.history", objectArgs{Object: object}, &out)
	return out, err
}

// DefineRegion creates an application-defined symbolic region on the
// service; points are polygon vertices in the GLOB prefix's frame.
func (c *LocationClient) DefineRegion(globStr string, points [][2]float64, properties map[string]string) error {
	return c.rpc.Call("mw.defineRegion", defineRegionArgs{
		GLOB: globStr, Points: points, Properties: properties,
	}, nil)
}
