package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"middlewhere/internal/core"
	"middlewhere/internal/model"
	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
	"middlewhere/internal/spatialdb"
)

// ConnState is the client's connection lifecycle state.
type ConnState int

// Connection states.
const (
	// StateConnected: a live connection is serving calls and pushes.
	StateConnected ConnState = iota
	// StateReconnecting: the connection died and redial attempts are in
	// progress; calls block-and-retry, pushes are paused.
	StateReconnecting
	// StateClosed: Close was called (or reconnection is disabled and
	// the connection died); the client is permanently down.
	StateClosed
)

// String names the state.
func (s ConnState) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateReconnecting:
		return "reconnecting"
	default:
		return "closed"
	}
}

// DialOptions tunes connection management. The zero value gives the
// historical defaults plus transparent reconnection.
type DialOptions struct {
	// DialTimeout bounds each TCP connect attempt (default 5s).
	DialTimeout time.Duration
	// CallTimeout bounds each RPC (default 10s).
	CallTimeout time.Duration
	// DialAttempts bounds the initial-dial retry loop and each call's
	// reconnect-and-retry loop (default 5; minimum 1).
	DialAttempts int
	// BackoffBase is the first redial delay; attempts double it up to
	// BackoffMax, plus jitter (defaults 25ms and 2s).
	BackoffBase, BackoffMax time.Duration
	// JitterSeed fixes the backoff jitter stream; zero seeds from the
	// clock (pass a value for reproducible chaos runs).
	JitterSeed int64
	// DisableReconnect restores the old behaviour: the first transport
	// failure is fatal and the session is lost.
	DisableReconnect bool
	// Wire selects the frame codec: WireAuto (default) negotiates
	// binary framing with a JSON fallback, WireJSON pins JSON, and
	// WireBinary fails the dial if the server declines. When left at
	// WireAuto the MW_WIRE environment variable ("binary", "json", or
	// a "client/daemon" pair) overrides it.
	Wire mwrpc.WirePref
	// OnStateChange, when non-nil, observes connection transitions
	// (called outside client locks, possibly from internal goroutines).
	OnStateChange func(ConnState)
	// Metrics receives the client's counters (reconnect rounds, replayed
	// subscriptions, malformed pushes, ...). Nil gives each client its
	// own registry, read back through Metrics(); pass obs.Default() to
	// fold the client into the process-global registry.
	Metrics *obs.Registry
}

func (o DialOptions) withDefaults() DialOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = mwrpc.DefaultDialTimeout
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = mwrpc.DefaultCallTimeout
	}
	if o.DialAttempts <= 0 {
		o.DialAttempts = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = time.Now().UnixNano()
	}
	if o.Wire == mwrpc.WireAuto {
		if env := os.Getenv(mwrpc.WireEnv); env != "" {
			o.Wire, _ = mwrpc.WireFromEnv(env)
		}
	}
	return o
}

// clientSub is one live subscription in the client's session table:
// everything needed to re-establish it on a fresh connection.
type clientSub struct {
	// localID is the stable ID handed to the application; it never
	// changes across reconnects.
	localID string
	args    SubscribeArgs
	handler func(NotificationDTO)
	// serverID is the server's ID on the current connection; epoch
	// says which connection established it.
	serverID string
	epoch    int
	// lastSeen fingerprints the last delivered notification per object
	// (replay guard across a resubscription).
	lastSeen map[string]string
}

// LocationClient is the application-side handle to a remote Location
// Service. It satisfies adapter.Sink and adapter.Registrar, so
// adapters can run on machines other than the service (as the paper's
// CORBA adapters do).
//
// The client is fault tolerant: when the connection drops it redials
// with capped exponential backoff and resumes the session — sensors
// registered through it are re-registered and subscriptions are
// re-established, with their IDs unchanged — so adapters and
// applications never see the blip beyond added latency.
type LocationClient struct {
	addr string
	opts DialOptions

	mu         sync.Mutex
	rpc        *mwrpc.Client
	epoch      int // increments on every successful (re)connect
	state      ConnState
	closed     bool
	closedCh   chan struct{}
	rng        *rand.Rand
	lastErr    error
	reconnects int

	// reconnectDone is non-nil while a reconnect round is in flight;
	// waiters block on it.
	reconnectDone chan struct{}

	// Session table (replayed on reconnect).
	sensorOrder []string
	sensors     map[string]SensorSpecDTO
	subs        map[string]*clientSub
	serverToSub map[string]*clientSub
	subSeq      int

	// ackSubs routes stream acks (by stream ID) to open ingest streams.
	ackSubs map[uint64]*IngestStream

	// metrics holds the client's counters (per client unless
	// DialOptions.Metrics shares a registry); the handles below are
	// cached so the push path stays alloc-free.
	metrics      *obs.Registry
	mReconnects  *obs.Counter // reconnect rounds started
	mResubscribe *obs.Counter // subscriptions replayed on resume
	mMalformed   *obs.Counter // undecodable push payloads dropped
	mDeduped     *obs.Counter // post-reconnect replays suppressed
	mIngests     *obs.Counter // readings forwarded over mw.ingest[Batch]
	mBatches     *obs.Counter // mw.ingestBatch frames sent
	mIngestRTT   *obs.Histogram

	// Streaming-ingest instrumentation (see stream.go).
	mStreamBatches       *obs.Counter // stream batches sent
	mStreamResends       *obs.Counter // batches re-sent after a reconnect
	mStreamDropped       *obs.Counter // batches the server could not decode
	gStreamCreditBatches *obs.Gauge   // batch credits currently held
	gStreamCreditBytes   *obs.Gauge   // byte credits currently held
	gStreamUnacked       *obs.Gauge   // batches in flight awaiting an ack
}

// DialLocation connects to a remote Location Service with default
// options (reconnection enabled).
func DialLocation(addr string) (*LocationClient, error) {
	return DialLocationOptions(addr, DialOptions{})
}

// DialLocationOptions connects with explicit fault-tolerance knobs.
// The initial dial itself retries with the configured backoff.
func DialLocationOptions(addr string, opts DialOptions) (*LocationClient, error) {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lc := &LocationClient{
		addr:         addr,
		opts:         opts,
		state:        StateReconnecting,
		closedCh:     make(chan struct{}),
		rng:          rand.New(rand.NewSource(opts.JitterSeed)),
		sensors:      make(map[string]SensorSpecDTO),
		subs:         make(map[string]*clientSub),
		serverToSub:  make(map[string]*clientSub),
		ackSubs:      make(map[uint64]*IngestStream),
		metrics:      reg,
		mReconnects:  reg.Counter("client_reconnect_rounds_total"),
		mResubscribe: reg.Counter("client_resubscribed_total"),
		mMalformed:   reg.Counter("client_malformed_pushes_total"),
		mDeduped:     reg.Counter("client_deduped_notifications_total"),
		mIngests:     reg.Counter("client_ingests_total"),
		mBatches:     reg.Counter("client_ingest_batches_total"),
		mIngestRTT:   reg.Histogram("client_ingest_rtt_us"),

		mStreamBatches:       reg.Counter("remote_stream_batches_total"),
		mStreamResends:       reg.Counter("remote_stream_resends_total"),
		mStreamDropped:       reg.Counter("remote_stream_dropped_total"),
		gStreamCreditBatches: reg.Gauge("remote_stream_credit_batches"),
		gStreamCreditBytes:   reg.Gauge("remote_stream_credit_bytes"),
		gStreamUnacked:       reg.Gauge("remote_stream_unacked"),
	}
	var lastErr error
	for attempt := 0; attempt < opts.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(lc.backoff(attempt - 1))
		}
		rpc, err := lc.dialOnce()
		if err != nil {
			lastErr = err
			continue
		}
		lc.mu.Lock()
		lc.rpc = rpc
		lc.epoch = 1
		lc.state = StateConnected
		lc.mu.Unlock()
		lc.watch(rpc, 1)
		return lc, nil
	}
	return nil, lastErr
}

// dialOnce makes one connection attempt and installs the push handler.
func (c *LocationClient) dialOnce() (*mwrpc.Client, error) {
	rpc, err := mwrpc.DialOptions(c.addr, mwrpc.Options{
		DialTimeout: c.opts.DialTimeout,
		CallTimeout: c.opts.CallTimeout,
		Wire:        c.opts.Wire,
	})
	if err != nil {
		return nil, err
	}
	rpc.OnPush(NotifyStream, c.onNotify)
	rpc.OnPushBinary(NotifyStream, c.onNotifyBin)
	rpc.OnStreamAck(c.routeAck)
	return rpc, nil
}

// backoff computes the delay before retry n (0-based), with jitter.
func (c *LocationClient) backoff(n int) time.Duration {
	d := c.opts.BackoffBase << uint(n)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d/2 + j // uniform in [d/2, d]
}

// watch arms the reconnect watchdog for one connection epoch: when the
// connection dies and the client is still open, it starts a reconnect
// round even if no call is in flight (so pushes resume on their own).
func (c *LocationClient) watch(rpc *mwrpc.Client, epoch int) {
	go func() {
		<-rpc.Done()
		c.mu.Lock()
		stale := c.closed || c.epoch != epoch
		c.mu.Unlock()
		if !stale {
			c.awaitReconnect(epoch)
		}
	}()
}

// Close drops the connection, stops reconnection, and releases the
// session.
func (c *LocationClient) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.state = StateClosed
	close(c.closedCh)
	rpc := c.rpc
	c.mu.Unlock()
	c.notifyState(StateClosed)
	if rpc != nil {
		rpc.Close()
	}
}

func (c *LocationClient) notifyState(s ConnState) {
	if c.opts.OnStateChange != nil {
		c.opts.OnStateChange(s)
	}
}

// current snapshots the live connection.
func (c *LocationClient) current() (*mwrpc.Client, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, mwrpc.ErrClosed
	}
	return c.rpc, c.epoch, nil
}

// isTransportErr reports whether err means the connection (not the
// request) failed, so a retry on a fresh connection can succeed.
// Server-side handler errors arrive as plain strings and are final.
func isTransportErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, mwrpc.ErrClosed) || errors.Is(err, mwrpc.ErrTimeout) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// awaitReconnect blocks until a reconnect round started at or after
// failedEpoch finishes (single-flight: one goroutine redials, the rest
// wait). It returns nil when a newer live connection is in place, and
// an error when the client closed, reconnection is disabled, or the
// round exhausted its attempts — so a call waiting on it is bounded by
// one round, not stuck forever against a dead server.
func (c *LocationClient) awaitReconnect(failedEpoch int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return mwrpc.ErrClosed
	}
	if c.epoch > failedEpoch {
		c.mu.Unlock()
		return nil
	}
	if c.opts.DisableReconnect {
		c.closed = true
		c.state = StateClosed
		close(c.closedCh)
		rpc := c.rpc
		c.mu.Unlock()
		c.notifyState(StateClosed)
		if rpc != nil {
			rpc.Close()
		}
		return mwrpc.ErrClosed
	}
	done := c.reconnectDone
	started := false
	if done == nil {
		done = make(chan struct{})
		c.reconnectDone = done
		c.state = StateReconnecting
		c.reconnects++
		c.mReconnects.Inc()
		started = true
		go c.reconnectLoop(done)
	}
	c.mu.Unlock()
	if started {
		c.notifyState(StateReconnecting)
	}
	select {
	case <-done:
	case <-c.closedCh:
		return mwrpc.ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return mwrpc.ErrClosed
	}
	if c.epoch > failedEpoch {
		return nil
	}
	err := c.lastErr
	if err == nil {
		err = mwrpc.ErrClosed
	}
	return fmt.Errorf("remote: reconnect to %s failed: %w", c.addr, err)
}

// reconnectLoop redials with capped exponential backoff until it
// restores a session, exhausts its attempts, or the client closes,
// then wakes every waiter. A failed round leaves the client
// disconnected; the next call (or Dial-time watchdog firing) starts a
// fresh round.
func (c *LocationClient) reconnectLoop(done chan struct{}) {
	defer func() {
		c.mu.Lock()
		if c.reconnectDone == done {
			c.reconnectDone = nil
		}
		c.mu.Unlock()
		close(done)
	}()
	for attempt := 0; attempt < c.opts.DialAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.backoff(attempt - 1)):
			case <-c.closedCh:
				return
			}
		}
		select {
		case <-c.closedCh:
			return
		default:
		}
		rpc, err := c.dialOnce()
		if err != nil {
			c.setLastErr(err)
			continue
		}
		if err := c.resumeSession(rpc); err != nil {
			c.setLastErr(err)
			rpc.Close()
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			rpc.Close()
			return
		}
		old := c.rpc
		c.rpc = rpc
		c.epoch++
		epoch := c.epoch
		c.state = StateConnected
		c.mu.Unlock()
		if old != nil {
			old.Close()
		}
		c.watch(rpc, epoch)
		c.notifyState(StateConnected)
		return
	}
}

func (c *LocationClient) setLastErr(err error) {
	c.mu.Lock()
	c.lastErr = err
	c.mu.Unlock()
}

// resumeSession replays the session table on a fresh connection:
// sensors re-register in their original order, then every subscription
// is re-established and its server ID remapped to the stable local ID.
func (c *LocationClient) resumeSession(rpc *mwrpc.Client) error {
	c.mu.Lock()
	order := append([]string(nil), c.sensorOrder...)
	specs := make(map[string]SensorSpecDTO, len(c.sensors))
	for id, s := range c.sensors {
		specs[id] = s
	}
	subs := make([]*clientSub, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	nextEpoch := c.epoch + 1
	c.mu.Unlock()

	for _, id := range order {
		if err := rpc.Call("mw.registerSensor", registerSensorArgs{
			SensorID: id, Spec: specs[id],
		}, nil); err != nil {
			return fmt.Errorf("remote: resume sensor %s: %w", id, err)
		}
	}
	for _, sub := range subs {
		var out subscribeReply
		if err := rpc.Call("mw.subscribe", sub.args, &out); err != nil {
			return fmt.Errorf("remote: resume subscription %s: %w", sub.localID, err)
		}
		c.mu.Lock()
		if _, live := c.subs[sub.localID]; live {
			delete(c.serverToSub, sub.serverID)
			sub.serverID = out.SubscriptionID
			sub.epoch = nextEpoch
			c.serverToSub[out.SubscriptionID] = sub
			c.mResubscribe.Inc()
		}
		c.mu.Unlock()
	}
	return nil
}

// call invokes an idempotent method, reconnecting and retrying on
// transport failures. Server-side errors return immediately.
func (c *LocationClient) call(method string, params, result interface{}) error {
	return c.callTraced(method, params, result, "")
}

// callTraced is call with an obs trace ID stamped on the request
// frame; "" behaves exactly like call.
func (c *LocationClient) callTraced(method string, params, result interface{}, trace string) error {
	var lastErr error
	for attempt := 0; attempt < c.opts.DialAttempts; attempt++ {
		rpc, epoch, err := c.current()
		if err != nil {
			return err
		}
		err = rpc.CallTraced(method, params, result, trace)
		if err == nil {
			return nil
		}
		if !isTransportErr(err) {
			return err
		}
		lastErr = err
		if werr := c.awaitReconnect(epoch); werr != nil {
			return fmt.Errorf("%w (after %v)", werr, lastErr)
		}
	}
	return lastErr
}

// onNotify dispatches a JSON-encoded pushed notification. Malformed
// payloads are counted (they feed Health), never silently dropped.
func (c *LocationClient) onNotify(payload json.RawMessage) {
	var n NotificationDTO
	if err := json.Unmarshal(payload, &n); err != nil {
		c.mMalformed.Inc()
		return
	}
	c.dispatchNotify(n)
}

// onNotifyBin is onNotify for binary-encoded pushes.
func (c *LocationClient) onNotifyBin(payload []byte) {
	n, err := decodeNotification(payload)
	if err != nil {
		c.mMalformed.Inc()
		return
	}
	c.dispatchNotify(n)
}

// dispatchNotify routes a decoded notification to its handler,
// remapping the server's subscription ID to the stable local one.
func (c *LocationClient) dispatchNotify(n NotificationDTO) {
	c.mu.Lock()
	sub := c.serverToSub[n.SubscriptionID]
	var fn func(NotificationDTO)
	if sub != nil {
		// Replay guard: a resubscription can re-deliver the exact event
		// the application already saw; suppress identical repeats.
		fp := n.Time + "|" + strconv.FormatFloat(n.Prob, 'g', -1, 64) + "|" + n.Band
		if sub.lastSeen == nil {
			sub.lastSeen = make(map[string]string)
		}
		if sub.lastSeen[n.Object] == fp {
			c.mu.Unlock()
			c.mDeduped.Inc()
			return
		}
		sub.lastSeen[n.Object] = fp
		n.SubscriptionID = sub.localID
		fn = sub.handler
	}
	c.mu.Unlock()
	if fn != nil {
		fn(n)
	}
}

// callMaybeBinary is callTraced for methods with a hand-rolled binary
// payload codec: on a binary-negotiated connection it sends enc and
// decodes the reply with dec, on a JSON connection it defers to
// jsonCall (which sees the live rpc handle). Transport failures
// reconnect and retry like callTraced, re-checking the codec each
// attempt — a reconnect may land on a server that negotiates
// differently.
func (c *LocationClient) callMaybeBinary(method, trace string, enc mwrpc.Appender, dec func([]byte) error, jsonCall func(rpc *mwrpc.Client) error) error {
	var lastErr error
	for attempt := 0; attempt < c.opts.DialAttempts; attempt++ {
		rpc, epoch, err := c.current()
		if err != nil {
			return err
		}
		if rpc.Codec() == mwrpc.CodecBinary {
			err = rpc.CallBinary(method, enc, dec, trace)
		} else {
			err = jsonCall(rpc)
		}
		if err == nil {
			return nil
		}
		if !isTransportErr(err) {
			return err
		}
		lastErr = err
		if werr := c.awaitReconnect(epoch); werr != nil {
			return fmt.Errorf("%w (after %v)", werr, lastErr)
		}
	}
	return lastErr
}

// Ingest forwards a sensor reading (adapter.Sink). Delivery is
// at-least-once across reconnects: a reading whose acknowledgement was
// lost may be stored twice, which the spatial database tolerates
// (identical reading rows fuse to the same posterior).
//
// When tracing is enabled the reading's trip is traced end to end: a
// trace ID begins here (unless the reading already carries one),
// travels on the request frame, and comes back on the notification it
// provokes.
func (c *LocationClient) Ingest(r model.Reading) error {
	trace := r.Trace
	if trace == "" && obs.Enabled() {
		trace = obs.BeginTrace()
	}
	start := time.Now()
	err := c.callTraced("mw.ingest", toReadingDTO(r), nil, trace)
	if err == nil {
		c.mIngests.Inc()
		c.mIngestRTT.Observe(float64(time.Since(start).Microseconds()))
	}
	obs.SpanSince(trace, "rpc_ingest", start)
	return err
}

// IngestBatch forwards a slice of readings in one mw.ingestBatch
// frame (adapter.BatchSink): one round trip and one server-side
// database pass instead of len(rs). Delivery keeps Ingest's
// at-least-once semantics across reconnects — a batch whose
// acknowledgement was lost may be stored twice, which the spatial
// database tolerates. One trace ID covers the whole frame; the server
// stamps it on every reading.
//
// Readings the server rejected (bad decode, unknown sensor) are
// reported as a *spatialdb.RejectedError carrying frame indices; the
// rest of the batch was stored, so callers must not re-send the whole
// slice on that error — a resilient sink retries only the rejected
// indices.
func (c *LocationClient) IngestBatch(rs []model.Reading) error {
	if len(rs) == 0 {
		return nil
	}
	var trace string
	if obs.Enabled() {
		trace = obs.BeginTrace()
	}
	start := time.Now()
	var reply IngestBatchReply
	err := c.callMaybeBinary("mw.ingestBatch", trace,
		func(b []byte) []byte { return AppendReadings(b, rs) },
		func(payload []byte) error {
			var derr error
			reply, derr = DecodeIngestReply(payload)
			return derr
		},
		func(rpc *mwrpc.Client) error {
			// The DTO slice is built lazily, only for JSON attempts.
			args := IngestBatchArgs{Readings: make([]ReadingDTO, 0, len(rs))}
			for _, r := range rs {
				args.Readings = append(args.Readings, toReadingDTO(r))
			}
			return rpc.CallTraced("mw.ingestBatch", args, &reply, trace)
		})
	if err == nil {
		c.mIngests.Add(uint64(reply.Accepted))
		c.mBatches.Inc()
		c.mIngestRTT.Observe(float64(time.Since(start).Microseconds()))
	}
	obs.SpanSince(trace, "rpc_ingest", start)
	if err != nil {
		return err
	}
	if len(reply.Rejected) > 0 {
		rej := &spatialdb.RejectedError{
			Indices: make([]int, 0, len(reply.Rejected)),
			Errs:    make([]error, 0, len(reply.Rejected)),
		}
		for _, rd := range reply.Rejected {
			rej.Indices = append(rej.Indices, rd.Index)
			rej.Errs = append(rej.Errs, errors.New(rd.Error))
		}
		return rej
	}
	return nil
}

// Metrics returns the client's metric registry (reconnect rounds,
// replayed subscriptions, malformed pushes, ingest round trips).
func (c *LocationClient) Metrics() *obs.Registry { return c.metrics }

// WireCodec reports the frame codec negotiated on the current
// connection (mwctl surfaces it; tests assert the compat matrix).
func (c *LocationClient) WireCodec() mwrpc.Codec {
	c.mu.Lock()
	rpc := c.rpc
	c.mu.Unlock()
	if rpc == nil {
		return mwrpc.CodecJSON
	}
	return rpc.Codec()
}

// RegisterSensor registers a sensor calibration (adapter.Registrar)
// and records it in the session table for replay after a reconnect.
func (c *LocationClient) RegisterSensor(sensorID string, spec model.SensorSpec) error {
	dto := toSpecDTO(spec)
	if err := c.call("mw.registerSensor", registerSensorArgs{
		SensorID: sensorID,
		Spec:     dto,
	}, nil); err != nil {
		return err
	}
	c.mu.Lock()
	if _, seen := c.sensors[sensorID]; !seen {
		c.sensorOrder = append(c.sensorOrder, sensorID)
	}
	c.sensors[sensorID] = dto
	c.mu.Unlock()
	return nil
}

// Locate asks where an object is.
func (c *LocationClient) Locate(object string) (LocationDTO, error) {
	var out LocationDTO
	err := c.call("mw.locate", objectArgs{Object: object}, &out)
	return out, err
}

// ProbInRegion asks for the probability that an object is in a region
// (GLOB string).
func (c *LocationClient) ProbInRegion(object, region string) (prob float64, band string, err error) {
	var out probReply
	args := regionQueryArgs{Object: object, Region: region}
	err = c.callMaybeBinary("mw.probInRegion", "",
		func(b []byte) []byte { return appendRegionQuery(b, args) },
		func(payload []byte) error {
			var derr error
			out, derr = decodeProbReply(payload)
			return derr
		},
		func(rpc *mwrpc.Client) error {
			return rpc.Call("mw.probInRegion", args, &out)
		})
	return out.Prob, out.Band, err
}

// ObjectsInRegion asks who is in a region with at least minProb.
func (c *LocationClient) ObjectsInRegion(region string, minProb float64) (map[string]float64, error) {
	var out map[string]float64
	args := regionQueryArgs{Region: region, MinProb: minProb}
	err := c.callMaybeBinary("mw.objectsInRegion", "",
		func(b []byte) []byte { return appendRegionQuery(b, args) },
		func(payload []byte) error {
			var derr error
			out, derr = decodeObjectsReply(payload)
			return derr
		},
		func(rpc *mwrpc.Client) error {
			return rpc.Call("mw.objectsInRegion", args, &out)
		})
	return out, err
}

// Subscribe registers a notification condition; handler runs on the
// client's push-reader goroutine. It returns the subscription ID,
// which stays valid across reconnects (the client re-subscribes on the
// server and keeps the mapping).
func (c *LocationClient) Subscribe(args SubscribeArgs, handler func(NotificationDTO)) (string, error) {
	var lastErr error
	for attempt := 0; attempt < c.opts.DialAttempts; attempt++ {
		rpc, epoch, err := c.current()
		if err != nil {
			return "", err
		}
		var out subscribeReply
		err = rpc.Call("mw.subscribe", args, &out)
		if err != nil {
			if !isTransportErr(err) {
				return "", err
			}
			lastErr = err
			if werr := c.awaitReconnect(epoch); werr != nil {
				return "", fmt.Errorf("%w (after %v)", werr, lastErr)
			}
			continue
		}
		c.mu.Lock()
		if c.epoch != epoch {
			// The connection died right after the server accepted the
			// subscription; the server has already cleaned it up with
			// the dead connection. Try again on the new one.
			c.mu.Unlock()
			continue
		}
		// The stable ID handed out is client-generated: server IDs are
		// per-server-instance and could collide with an older session's
		// IDs after a server restart.
		c.subSeq++
		sub := &clientSub{
			localID:  "csub-" + strconv.Itoa(c.subSeq),
			args:     args,
			handler:  handler,
			serverID: out.SubscriptionID,
			epoch:    epoch,
		}
		c.subs[sub.localID] = sub
		c.serverToSub[sub.serverID] = sub
		c.mu.Unlock()
		return sub.localID, nil
	}
	return "", lastErr
}

// Unsubscribe removes a subscription by its stable ID. Transport
// failures during the server call are absorbed: the session table no
// longer holds the subscription, so it will not be resumed, and the
// dead connection's server-side state is cleaned up by the server.
func (c *LocationClient) Unsubscribe(id string) error {
	c.mu.Lock()
	sub, ok := c.subs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("remote: unknown subscription %s", id)
	}
	delete(c.subs, id)
	delete(c.serverToSub, sub.serverID)
	serverID := sub.serverID
	c.mu.Unlock()
	err := c.call("mw.unsubscribe", unsubscribeArgs{SubscriptionID: serverID}, nil)
	if isTransportErr(err) {
		return nil
	}
	return err
}

// Relate returns the RCC-8 relation and passage between two regions.
func (c *LocationClient) Relate(a, b string) (relation, passage string, err error) {
	var out relateReply
	err = c.call("mw.relate", relateArgs{A: a, B: b}, &out)
	return out.Relation, out.Passage, err
}

// Route returns the shortest route between two regions; policy is
// "free" or "restricted".
func (c *LocationClient) Route(from, to, policy string) (RouteReply, error) {
	var out RouteReply
	err := c.call("mw.route", routeArgs{From: from, To: to, Policy: policy}, &out)
	return out, err
}

// Proximity returns the probability two objects are within threshold.
func (c *LocationClient) Proximity(a, b string, threshold float64) (float64, error) {
	var out probReply
	err := c.call("mw.proximity", proximityArgs{A: a, B: b, Threshold: threshold}, &out)
	return out.Prob, err
}

// CoLocated reports whether two objects share a region at granularity
// "building", "floor", or "room".
func (c *LocationClient) CoLocated(a, b, granularity string) (bool, float64, error) {
	var out coLocatedReply
	err := c.call("mw.coLocated", coLocatedArgs{A: a, B: b, Granularity: granularity}, &out)
	return out.CoLocated, out.Prob, err
}

// Query runs an mwql statement ("SELECT objects WHERE ...") against
// the service's spatial database.
func (c *LocationClient) Query(query string) ([]ObjectDTO, error) {
	var out []ObjectDTO
	err := c.call("mw.query", queryArgs{Query: query}, &out)
	return out, err
}

// Distribution fetches an object's full spatial posterior.
func (c *LocationClient) Distribution(object string) ([]RegionProbDTO, error) {
	var out []RegionProbDTO
	err := c.call("mw.distribution", distributionArgs{Object: object}, &out)
	return out, err
}

// History fetches an object's recorded location trail (requires the
// service to run with history enabled).
func (c *LocationClient) History(object string) ([]LocationDTO, error) {
	var out []LocationDTO
	err := c.call("mw.history", objectArgs{Object: object}, &out)
	return out, err
}

// DefineRegion creates an application-defined symbolic region on the
// service; points are polygon vertices in the GLOB prefix's frame.
func (c *LocationClient) DefineRegion(globStr string, points [][2]float64, properties map[string]string) error {
	return c.call("mw.defineRegion", defineRegionArgs{
		GLOB: globStr, Points: points, Properties: properties,
	}, nil)
}

// ServerHealth fetches the remote service's heartbeat snapshot.
func (c *LocationClient) ServerHealth() (HealthDTO, error) {
	var out HealthDTO
	err := c.call("mw.health", struct{}{}, &out)
	return out, err
}

// Stats fetches the remote service's observability snapshot; traces
// caps the recent traces included (0 = metrics only).
func (c *LocationClient) Stats(traces int) (StatsDTO, error) {
	var out StatsDTO
	err := c.call("mw.stats", StatsArgs{Traces: traces}, &out)
	return out, err
}

// ClientHealth is the client-side view of the connection's health.
type ClientHealth struct {
	// State is Healthy while connected and clean, Degraded while
	// reconnecting or after malformed pushes were seen, Down once
	// closed.
	State core.HealthState
	// Conn is the raw connection state.
	Conn ConnState
	// Reconnects counts reconnect rounds since dial.
	Reconnects int
	// MalformedNotifications counts undecodable push payloads dropped;
	// DedupedNotifications counts suppressed post-reconnect replays.
	MalformedNotifications, DedupedNotifications uint64
	// Sensors and Subscriptions size the resumable session.
	Sensors, Subscriptions int
	// LastError is the most recent transport error, if any.
	LastError string
}

// Health reports the client's connection health. The mapping feeds
// mwctl's health command: Connected and clean is Healthy; a reconnect
// in progress or malformed pushes mean Degraded; Closed is Down.
func (c *LocationClient) Health() ClientHealth {
	c.mu.Lock()
	h := ClientHealth{
		Conn:          c.state,
		Reconnects:    c.reconnects,
		Sensors:       len(c.sensors),
		Subscriptions: len(c.subs),
	}
	if c.lastErr != nil {
		h.LastError = c.lastErr.Error()
	}
	c.mu.Unlock()
	h.MalformedNotifications = c.mMalformed.Value()
	h.DedupedNotifications = c.mDeduped.Value()
	switch {
	case h.Conn == StateClosed:
		h.State = core.Down
	case h.Conn == StateReconnecting || h.MalformedNotifications > 0:
		h.State = core.Degraded
	default:
		h.State = core.Healthy
	}
	return h
}
