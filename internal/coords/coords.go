// Package coords implements MiddleWhere's hierarchical coordinate
// systems (§3). Each building, floor and room has its own planar frame
// with an origin, rotation, and scale relative to its parent frame.
// The package stores the frame tree and converts points, rectangles
// and polygons between any two frames that share a root.
//
// Frames are named by the GLOB path of the space they belong to, e.g.
// "SC", "SC/3", "SC/3/3216". Conversions compose the affine transforms
// up to the common ancestor and back down.
package coords

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"middlewhere/internal/geom"
)

// Transform is a similarity transform (rotation + uniform scale +
// translation) mapping child-frame coordinates into the parent frame:
//
//	parent = Origin + Scale * Rot(Theta) * child
type Transform struct {
	// Origin is the child frame's origin expressed in the parent frame.
	Origin geom.Point
	// Theta is the counter-clockwise rotation of the child frame's axes
	// relative to the parent's, in radians.
	Theta float64
	// Scale is the uniform scale factor from child units to parent
	// units. Zero is treated as 1 (identity scale) so the zero
	// Transform is usable as-is.
	Scale float64
}

// Identity is the transform that maps a frame onto its parent
// unchanged.
var Identity = Transform{Scale: 1}

// scale returns the effective scale factor.
func (t Transform) scale() float64 {
	if t.Scale == 0 {
		return 1
	}
	return t.Scale
}

// Apply maps p from the child frame to the parent frame.
func (t Transform) Apply(p geom.Point) geom.Point {
	s, c := math.Sincos(t.Theta)
	k := t.scale()
	return geom.Pt(
		t.Origin.X+k*(c*p.X-s*p.Y),
		t.Origin.Y+k*(s*p.X+c*p.Y),
	)
}

// Invert maps p from the parent frame back into the child frame.
func (t Transform) Invert(p geom.Point) geom.Point {
	s, c := math.Sincos(t.Theta)
	k := t.scale()
	d := p.Sub(t.Origin)
	return geom.Pt(
		(c*d.X+s*d.Y)/k,
		(-s*d.X+c*d.Y)/k,
	)
}

// Tree is a registry of coordinate frames keyed by GLOB path. The zero
// Tree is not usable; call NewTree. Tree is safe for concurrent use.
type Tree struct {
	mu     sync.RWMutex
	frames map[string]frame
}

type frame struct {
	parent string // "" for roots
	tf     Transform
}

// Sentinel errors.
var (
	ErrUnknownFrame = errors.New("coords: unknown frame")
	ErrCycle        = errors.New("coords: frame cycle")
	ErrNoCommonRoot = errors.New("coords: frames do not share a root")
	ErrDuplicate    = errors.New("coords: frame already defined")
)

// NewTree returns an empty frame tree.
func NewTree() *Tree {
	return &Tree{frames: make(map[string]frame)}
}

// AddRoot registers a root frame (a building). Root frames have no
// parent; conversions between different roots fail with
// ErrNoCommonRoot.
func (t *Tree) AddRoot(name string) error {
	return t.add(name, "", Identity)
}

// AddFrame registers a child frame under parent with the given
// transform (child coordinates → parent coordinates). The parent must
// already exist.
func (t *Tree) AddFrame(name, parent string, tf Transform) error {
	if parent == "" {
		return fmt.Errorf("coords: frame %q needs a parent; use AddRoot for roots", name)
	}
	return t.add(name, parent, tf)
}

func (t *Tree) add(name, parent string, tf Transform) error {
	if name == "" {
		return errors.New("coords: empty frame name")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.frames[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if parent != "" {
		if _, ok := t.frames[parent]; !ok {
			return fmt.Errorf("%w: parent %q of %q", ErrUnknownFrame, parent, name)
		}
	}
	t.frames[name] = frame{parent: parent, tf: tf}
	return nil
}

// Has reports whether the named frame exists.
func (t *Tree) Has(name string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.frames[name]
	return ok
}

// Frames returns the sorted names of all registered frames.
func (t *Tree) Frames() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.frames))
	for name := range t.frames {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parent returns the parent frame name of name ("" for roots).
func (t *Tree) Parent(name string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, ok := t.frames[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownFrame, name)
	}
	return f.parent, nil
}

// pathToRoot returns the chain of frame names from name up to its
// root, inclusive. Caller holds the read lock.
func (t *Tree) pathToRoot(name string) ([]string, error) {
	var chain []string
	seen := make(map[string]bool)
	for cur := name; cur != ""; {
		if seen[cur] {
			return nil, fmt.Errorf("%w: via %q", ErrCycle, cur)
		}
		seen[cur] = true
		f, ok := t.frames[cur]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownFrame, cur)
		}
		chain = append(chain, cur)
		cur = f.parent
	}
	return chain, nil
}

// Convert maps p from frame `from` into frame `to`. Both frames must
// exist and share a root.
func (t *Tree) Convert(p geom.Point, from, to string) (geom.Point, error) {
	if from == to {
		if !t.Has(from) {
			return geom.Point{}, fmt.Errorf("%w: %q", ErrUnknownFrame, from)
		}
		return p, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	up, err := t.pathToRoot(from)
	if err != nil {
		return geom.Point{}, err
	}
	down, err := t.pathToRoot(to)
	if err != nil {
		return geom.Point{}, err
	}
	if up[len(up)-1] != down[len(down)-1] {
		return geom.Point{}, fmt.Errorf("%w: %q and %q", ErrNoCommonRoot, from, to)
	}

	// Trim the shared suffix (common ancestors) so we only transform up
	// to the lowest common ancestor and back down.
	for len(up) > 1 && len(down) > 1 && up[len(up)-1] == down[len(down)-1] &&
		up[len(up)-2] == down[len(down)-2] {
		up = up[:len(up)-1]
		down = down[:len(down)-1]
	}

	// Ascend from `from` to the LCA...
	for _, name := range up[:len(up)-1] {
		p = t.frames[name].tf.Apply(p)
	}
	// ...then descend to `to` by inverting each step, root-most first.
	for i := len(down) - 2; i >= 0; i-- {
		p = t.frames[down[i]].tf.Invert(p)
	}
	return p, nil
}

// ConvertRect maps r from one frame to another and returns the MBR of
// the transformed corners (exact for axis-aligned transforms, the
// bounding approximation otherwise — which is precisely the MBR
// semantics the rest of MiddleWhere expects).
func (t *Tree) ConvertRect(r geom.Rect, from, to string) (geom.Rect, error) {
	corners := r.Vertices()
	out := make([]geom.Point, len(corners))
	for i, c := range corners {
		p, err := t.Convert(c, from, to)
		if err != nil {
			return geom.Rect{}, err
		}
		out[i] = p
	}
	return geom.BoundsOfPoints(out...), nil
}

// ConvertPolygon maps every vertex of poly between frames.
func (t *Tree) ConvertPolygon(poly geom.Polygon, from, to string) (geom.Polygon, error) {
	out := make(geom.Polygon, len(poly))
	for i, v := range poly {
		p, err := t.Convert(v, from, to)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Root returns the root frame name above name.
func (t *Tree) Root(name string) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	chain, err := t.pathToRoot(name)
	if err != nil {
		return "", err
	}
	return chain[len(chain)-1], nil
}

// FrameForGLOBPath returns the deepest registered frame that is a
// prefix of the given GLOB path (joined by '/'). This resolves which
// coordinate system a GLOB's coordinates are expressed in when
// intermediate spaces (e.g. individual rooms) have no frame of their
// own.
func (t *Tree) FrameForGLOBPath(segments []string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := len(segments); i > 0; i-- {
		name := strings.Join(segments[:i], "/")
		if _, ok := t.frames[name]; ok {
			return name, true
		}
	}
	return "", false
}

// Transform returns the registered child→parent transform of a frame
// (Identity for roots).
func (t *Tree) Transform(name string) (Transform, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, ok := t.frames[name]
	if !ok {
		return Transform{}, fmt.Errorf("%w: %q", ErrUnknownFrame, name)
	}
	return f.tf, nil
}
