package coords

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"middlewhere/internal/geom"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

func pointsClose(a, b geom.Point) bool {
	return almostEq(a.X, b.X) && almostEq(a.Y, b.Y)
}

// buildingTree builds SC -> SC/3 -> {SC/3/3216, SC/3/3105} with simple
// translations, plus a rotated room SC/3/lab.
func buildingTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree()
	if err := tr.AddRoot("SC"); err != nil {
		t.Fatal(err)
	}
	// Floor 3's origin sits at (0, 100) in building coordinates.
	if err := tr.AddFrame("SC/3", "SC", Transform{Origin: geom.Pt(0, 100), Scale: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddFrame("SC/3/3216", "SC/3", Transform{Origin: geom.Pt(45, 12), Scale: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddFrame("SC/3/3105", "SC/3", Transform{Origin: geom.Pt(330, 0), Scale: 1}); err != nil {
		t.Fatal(err)
	}
	// A room rotated 90 degrees CCW relative to the floor.
	if err := tr.AddFrame("SC/3/lab", "SC/3", Transform{Origin: geom.Pt(10, 10), Theta: math.Pi / 2, Scale: 1}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTransformApplyInvert(t *testing.T) {
	tf := Transform{Origin: geom.Pt(5, -3), Theta: math.Pi / 6, Scale: 2}
	p := geom.Pt(1.5, 2.25)
	round := tf.Invert(tf.Apply(p))
	if !pointsClose(round, p) {
		t.Errorf("Invert(Apply(p)) = %v, want %v", round, p)
	}
}

func TestZeroTransformIsIdentityScale(t *testing.T) {
	var tf Transform // Scale 0 must behave as 1
	p := geom.Pt(3, 4)
	if got := tf.Apply(p); !pointsClose(got, p) {
		t.Errorf("zero transform Apply = %v", got)
	}
	if got := tf.Invert(p); !pointsClose(got, p) {
		t.Errorf("zero transform Invert = %v", got)
	}
}

func TestConvertUpAndDown(t *testing.T) {
	tr := buildingTree(t)
	tests := []struct {
		name     string
		give     geom.Point
		from, to string
		want     geom.Point
	}{
		{"room to floor", geom.Pt(1, 2), "SC/3/3216", "SC/3", geom.Pt(46, 14)},
		{"room to building", geom.Pt(1, 2), "SC/3/3216", "SC", geom.Pt(46, 114)},
		{"floor to room", geom.Pt(46, 14), "SC/3", "SC/3/3216", geom.Pt(1, 2)},
		{"room to sibling room", geom.Pt(0, 0), "SC/3/3216", "SC/3/3105", geom.Pt(-285, 12)},
		{"same frame", geom.Pt(7, 8), "SC/3", "SC/3", geom.Pt(7, 8)},
		{"rotated room to floor", geom.Pt(1, 0), "SC/3/lab", "SC/3", geom.Pt(10, 11)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tr.Convert(tt.give, tt.from, tt.to)
			if err != nil {
				t.Fatalf("Convert: %v", err)
			}
			if !pointsClose(got, tt.want) {
				t.Errorf("Convert = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestConvertRoundTripEverywhere(t *testing.T) {
	tr := buildingTree(t)
	frames := tr.Frames()
	p := geom.Pt(3.5, -1.25)
	for _, from := range frames {
		for _, to := range frames {
			got, err := tr.Convert(p, from, to)
			if err != nil {
				t.Fatalf("Convert %s->%s: %v", from, to, err)
			}
			back, err := tr.Convert(got, to, from)
			if err != nil {
				t.Fatalf("Convert back %s->%s: %v", to, from, err)
			}
			if !pointsClose(back, p) {
				t.Errorf("%s->%s->%s = %v, want %v", from, to, from, back, p)
			}
		}
	}
}

func TestConvertErrors(t *testing.T) {
	tr := buildingTree(t)
	if _, err := tr.Convert(geom.Pt(0, 0), "nope", "SC"); !errors.Is(err, ErrUnknownFrame) {
		t.Errorf("unknown from: %v", err)
	}
	if _, err := tr.Convert(geom.Pt(0, 0), "SC", "nope"); !errors.Is(err, ErrUnknownFrame) {
		t.Errorf("unknown to: %v", err)
	}
	if _, err := tr.Convert(geom.Pt(0, 0), "nope", "nope"); !errors.Is(err, ErrUnknownFrame) {
		t.Errorf("unknown same: %v", err)
	}
	if err := tr.AddRoot("Other"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Convert(geom.Pt(0, 0), "Other", "SC"); !errors.Is(err, ErrNoCommonRoot) {
		t.Errorf("different roots: %v", err)
	}
}

func TestAddErrors(t *testing.T) {
	tr := NewTree()
	if err := tr.AddRoot("SC"); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddRoot("SC"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate root: %v", err)
	}
	if err := tr.AddFrame("SC/9", "missing", Identity); !errors.Is(err, ErrUnknownFrame) {
		t.Errorf("missing parent: %v", err)
	}
	if err := tr.AddFrame("x", "", Identity); err == nil {
		t.Error("AddFrame with empty parent should fail")
	}
	if err := tr.AddRoot(""); err == nil {
		t.Error("empty name should fail")
	}
}

func TestParentAndRoot(t *testing.T) {
	tr := buildingTree(t)
	p, err := tr.Parent("SC/3/3216")
	if err != nil || p != "SC/3" {
		t.Errorf("Parent = %q, %v", p, err)
	}
	p, err = tr.Parent("SC")
	if err != nil || p != "" {
		t.Errorf("root Parent = %q, %v", p, err)
	}
	if _, err := tr.Parent("nope"); !errors.Is(err, ErrUnknownFrame) {
		t.Errorf("unknown Parent err = %v", err)
	}
	r, err := tr.Root("SC/3/3105")
	if err != nil || r != "SC" {
		t.Errorf("Root = %q, %v", r, err)
	}
}

func TestConvertRect(t *testing.T) {
	tr := buildingTree(t)
	r, err := tr.ConvertRect(geom.R(0, 0, 2, 3), "SC/3/3216", "SC/3")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Eq(geom.R(45, 12, 47, 15)) {
		t.Errorf("ConvertRect = %v", r)
	}
	// A rotated frame yields the MBR of the rotated rectangle.
	r, err = tr.ConvertRect(geom.R(0, 0, 2, 1), "SC/3/lab", "SC/3")
	if err != nil {
		t.Fatal(err)
	}
	// 90-degree CCW rotation about origin maps (x,y) -> (-y,x), then
	// translate by (10,10): corners (0,0),(2,0),(2,1),(0,1) map to
	// (10,10),(10,12),(9,12),(9,10).
	if !r.Eq(geom.R(9, 10, 10, 12)) {
		t.Errorf("rotated ConvertRect = %v", r)
	}
	if _, err := tr.ConvertRect(geom.R(0, 0, 1, 1), "nope", "SC"); err == nil {
		t.Error("expected error for unknown frame")
	}
}

func TestConvertPolygon(t *testing.T) {
	tr := buildingTree(t)
	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1)}
	got, err := tr.ConvertPolygon(poly, "SC/3/3216", "SC/3")
	if err != nil {
		t.Fatal(err)
	}
	want := geom.Polygon{geom.Pt(45, 12), geom.Pt(46, 12), geom.Pt(46, 13)}
	for i := range want {
		if !pointsClose(got[i], want[i]) {
			t.Errorf("vertex %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Area is preserved under rigid motion.
	if !almostEq(got.Area(), poly.Area()) {
		t.Errorf("area changed: %v -> %v", poly.Area(), got.Area())
	}
	if _, err := tr.ConvertPolygon(poly, "SC", "nope"); err == nil {
		t.Error("expected error for unknown frame")
	}
}

func TestFrameForGLOBPath(t *testing.T) {
	tr := buildingTree(t)
	tests := []struct {
		give   []string
		want   string
		wantOK bool
	}{
		{[]string{"SC", "3", "3216"}, "SC/3/3216", true},
		{[]string{"SC", "3", "3216", "desk"}, "SC/3/3216", true}, // falls back to room
		{[]string{"SC", "3", "9999"}, "SC/3", true},              // unknown room -> floor
		{[]string{"SC"}, "SC", true},
		{[]string{"ZZ", "1"}, "", false},
		{nil, "", false},
	}
	for _, tt := range tests {
		got, ok := tr.FrameForGLOBPath(tt.give)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("FrameForGLOBPath(%v) = %q,%v want %q,%v", tt.give, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestQuickTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		_ = seed
		tf := Transform{
			Origin: geom.Pt(rng.Float64()*200-100, rng.Float64()*200-100),
			Theta:  rng.Float64() * 2 * math.Pi,
			Scale:  0.25 + rng.Float64()*4,
		}
		p := geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		got := tf.Invert(tf.Apply(p))
		return math.Abs(got.X-p.X) < 1e-6 && math.Abs(got.Y-p.Y) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickConvertTransitivity(t *testing.T) {
	// Converting A->B->C equals converting A->C directly.
	tr := NewTree()
	if err := tr.AddRoot("B"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(tr.AddFrame("B/f", "B", Transform{Origin: geom.Pt(10, 20), Theta: 0.3, Scale: 1.5}))
	must(tr.AddFrame("B/f/r1", "B/f", Transform{Origin: geom.Pt(-4, 2), Theta: 1.1, Scale: 0.5}))
	must(tr.AddFrame("B/f/r2", "B/f", Transform{Origin: geom.Pt(6, -3), Theta: 2.2, Scale: 2}))

	f := func(seed int64) bool {
		_ = seed
		p := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		via, err := tr.Convert(p, "B/f/r1", "B/f")
		if err != nil {
			return false
		}
		via, err = tr.Convert(via, "B/f", "B/f/r2")
		if err != nil {
			return false
		}
		direct, err := tr.Convert(p, "B/f/r1", "B/f/r2")
		if err != nil {
			return false
		}
		return math.Abs(via.X-direct.X) < 1e-6 && math.Abs(via.Y-direct.Y) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTransformAccessor(t *testing.T) {
	tr := buildingTree(t)
	tf, err := tr.Transform("SC/3/3216")
	if err != nil {
		t.Fatal(err)
	}
	if !pointsClose(tf.Origin, geom.Pt(45, 12)) {
		t.Errorf("origin = %v", tf.Origin)
	}
	if _, err := tr.Transform("nope"); !errors.Is(err, ErrUnknownFrame) {
		t.Errorf("err = %v", err)
	}
	root, err := tr.Transform("SC")
	if err != nil || root.Theta != 0 {
		t.Errorf("root transform = %+v, %v", root, err)
	}
}
