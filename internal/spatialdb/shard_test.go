package spatialdb

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"middlewhere/internal/coords"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
)

// multiFloorDB builds a DB with `floors` stacked floor frames
// (CS/Floor1..CS/FloorN), each 500x100, so readings and objects on
// different floors land on different shards.
func multiFloorDB(t testing.TB, floors int) *DB {
	t.Helper()
	tr := coords.NewTree()
	if err := tr.AddRoot("CS"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= floors; i++ {
		name := fmt.Sprintf("CS/Floor%d", i)
		off := coords.Transform{Origin: geom.Pt(0, float64(i-1)*100), Scale: 1}
		if err := tr.AddFrame(name, "CS", off); err != nil {
			t.Fatal(err)
		}
	}
	return New(tr, geom.R(0, 0, 500, float64(floors)*100))
}

// longSpec is a sensor spec whose readings effectively never expire,
// so concurrency tests are not racing TTLs.
func longSpec() model.SensorSpec {
	return model.SensorSpec{
		Type:       model.TypeUbisense,
		Errors:     model.ErrorModel{X: 0.9, Y: 0.95, Z: 0.05},
		Resolution: model.DistanceResolution(0.5),
		TTL:        24 * time.Hour,
	}
}

func floorReading(sensor, object string, floor int, x, y float64, at time.Time) model.Reading {
	return model.Reading{
		SensorID:  sensor,
		MObjectID: object,
		Location:  glob.MustParse(fmt.Sprintf("CS/Floor%d/(%g,%g)", floor, x, y)),
		Time:      at,
	}
}

func TestShardKeyForGLOB(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"CS/Floor3/NetLab", "CS/Floor3"},
		{"CS/Floor3", "CS/Floor3"},
		{"CS", "CS"},
		{"CS/Floor3/(5,22)", "CS/Floor3"},
		{"CS/(5,22)", "CS"},
		{"(5,22)", rootShardKey},
	}
	for _, c := range cases {
		g := glob.MustParse(c.in)
		if got := shardKeyForGLOB(g); got != c.want {
			t.Errorf("shardKeyForGLOB(%q) = %q, want %q", c.in, got, c.want)
		}
		// The string-based router must agree with the parsed one.
		if got := shardKeyForID(c.in); got != c.want {
			t.Errorf("shardKeyForID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestShardRoutingAndStats(t *testing.T) {
	db := multiFloorDB(t, 3)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	for f := 1; f <= 3; f++ {
		err := db.InsertObject(Object{
			GLOB: glob.MustParse(fmt.Sprintf("CS/Floor%d/room", f)),
			Type: "Room", Kind: glob.KindPolygon,
			LocalPoints: []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < f; i++ { // floor k gets k readings
			obj := fmt.Sprintf("p%d-%d", f, i)
			if err := db.InsertReading(floorReading("s1", obj, f, 5, 5, t0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := db.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("shards = %+v", stats)
	}
	for i, st := range stats {
		wantKey := fmt.Sprintf("CS/Floor%d", i+1)
		if st.Key != wantKey {
			t.Errorf("stats[%d].Key = %q, want %q (stats must sort by key)", i, st.Key, wantKey)
		}
		if st.Objects != 1 || st.RTreeNodes != 1 {
			t.Errorf("%s: objects = %d rtree = %d, want 1/1", st.Key, st.Objects, st.RTreeNodes)
		}
		if st.MobileObjects != i+1 || st.Readings != i+1 || st.Inserts != uint64(i+1) {
			t.Errorf("%s: mobile=%d readings=%d inserts=%d, want %d each",
				st.Key, st.MobileObjects, st.Readings, st.Inserts, i+1)
		}
		if st.Epoch == 0 {
			t.Errorf("%s: write epoch still zero after inserts", st.Key)
		}
	}
	// Global views still union the shards.
	if got := len(db.MobileObjects()); got != 6 {
		t.Errorf("MobileObjects = %d, want 6", got)
	}
	if got := len(db.Objects()); got != 3 {
		t.Errorf("Objects = %d, want 3", got)
	}
}

func TestFloorMigrationKeepsEpochMonotonic(t *testing.T) {
	db := multiFloorDB(t, 2)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterSensor("s2", longSpec()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(floorReading("s1", "walker", 1, 5, 5, t0)); err != nil {
		t.Fatal(err)
	}
	e1 := db.ReadingEpoch("walker")
	if e1 == 0 {
		t.Fatal("epoch zero after first insert")
	}
	// The object takes the stairs: next reading is on floor 2. Its rows
	// must follow it and its epoch must keep rising — a cached fusion
	// result keyed on e1 has to read as stale afterwards.
	if err := db.InsertReading(floorReading("s2", "walker", 2, 5, 5, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	e2 := db.ReadingEpoch("walker")
	if e2 <= e1 {
		t.Errorf("epoch after migration = %d, want > %d", e2, e1)
	}
	rows := db.ReadingsFor("walker", t0.Add(time.Second))
	if len(rows) != 2 {
		t.Fatalf("rows after migration = %v", rows)
	}
	stats := db.ShardStats()
	if stats[0].MobileObjects != 0 || stats[1].MobileObjects != 1 {
		t.Errorf("rows did not migrate: %+v", stats)
	}
	if got := mMigrations.Value(); got == 0 {
		t.Error("migration counter not bumped")
	}
}

func TestSnapshotIsImmutableCut(t *testing.T) {
	db := multiFloorDB(t, 2)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(floorReading("s1", "anna", 1, 5, 5, t0)); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	epochAtCut := snap.ReadingEpoch("anna")

	// Mutate after the cut: new rows for anna, a brand-new object on
	// the other floor, and a forced expiry.
	if err := db.InsertReading(floorReading("s1", "anna", 1, 6, 5, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(floorReading("s1", "bob", 2, 5, 5, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	db.ExpireReadings(t0.Add(2*time.Second), func(r model.Reading) bool { return r.MObjectID == "anna" })

	if got := snap.ReadingsFor("anna", t0); len(got) != 1 {
		t.Errorf("snapshot rows for anna = %v, want the 1 pre-cut row", got)
	}
	if got := snap.ReadingEpoch("anna"); got != epochAtCut {
		t.Errorf("snapshot epoch moved: %d -> %d", epochAtCut, got)
	}
	if got := snap.MobileObjects(); !reflect.DeepEqual(got, []string{"anna"}) {
		t.Errorf("snapshot MobileObjects = %v, want [anna]", got)
	}
	// The live table moved on.
	if got := db.ReadingsFor("anna", t0.Add(2*time.Second)); len(got) != 0 {
		t.Errorf("live rows for anna after forced expiry = %v", got)
	}
	if got := db.MobileObjects(); !reflect.DeepEqual(got, []string{"bob"}) {
		t.Errorf("live MobileObjects = %v, want [bob]", got)
	}
	if db.ReadingEpoch("anna") <= epochAtCut {
		t.Error("live epoch must run ahead of the snapshot's after mutation")
	}
}

// TestSnapshotBatchAtomicity is the snapshot-isolation stress test: a
// region query (or any snapshot reader) racing batched ingest must see
// none or all of each InsertReadings batch per object, never a torn
// prefix. Run under -race.
func TestSnapshotBatchAtomicity(t *testing.T) {
	const (
		floors    = 3
		batchLen  = 4 // readings per object per batch
		batches   = 12
		objPerFlr = 2
	)
	// batchLen*batches stays under maxReadingsPerObject so trimming
	// never disturbs the row-count invariant the test asserts.
	if batchLen*batches >= maxReadingsPerObject {
		t.Fatal("test misconfigured: trimming would break the invariant")
	}
	db := multiFloorDB(t, floors)
	for s := 0; s < batchLen; s++ {
		if err := db.RegisterSensor(fmt.Sprintf("s%d", s), longSpec()); err != nil {
			t.Fatal(err)
		}
	}
	var objects []string
	for f := 1; f <= floors; f++ {
		for o := 0; o < objPerFlr; o++ {
			objects = append(objects, fmt.Sprintf("obj-%d-%d", f, o))
		}
	}

	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	var torn atomic.Int64
	// Writers: one per object, each submitting `batches` batches of
	// batchLen readings.
	for f := 1; f <= floors; f++ {
		for o := 0; o < objPerFlr; o++ {
			f, obj := f, fmt.Sprintf("obj-%d-%d", f, o)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					batch := make([]model.Reading, batchLen)
					for s := 0; s < batchLen; s++ {
						batch[s] = floorReading(fmt.Sprintf("s%d", s), obj, f,
							float64(b), float64(s), t0.Add(time.Duration(b)*time.Millisecond))
					}
					if n, err := db.InsertReadings(batch, nil); err != nil || n != batchLen {
						t.Errorf("insert batch: n=%d err=%v", n, err)
						return
					}
				}
			}()
		}
	}
	// Readers: snapshot continuously and assert every object's visible
	// row count is a whole number of batches.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				snap := db.Snapshot()
				for _, obj := range objects {
					if n := len(snap.ReadingsFor(obj, t0)); n%batchLen != 0 {
						torn.Add(1)
						t.Errorf("snapshot saw %d rows for %s: partial batch visible", n, obj)
						return
					}
				}
			}
		}()
	}
	// Let writers finish, then stop the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stopReaders)
	}()
	<-done
	select {
	case <-stopReaders:
	default:
		close(stopReaders)
	}
	if torn.Load() != 0 {
		t.Fatalf("%d torn snapshots observed", torn.Load())
	}
	// Every batch eventually landed.
	final := db.Snapshot()
	for _, obj := range objects {
		if n := len(final.ReadingsFor(obj, t0)); n != batchLen*batches {
			t.Errorf("%s: final rows = %d, want %d", obj, n, batchLen*batches)
		}
	}
}

// TestCrossShardQueriesSerialParallelIdentical pins the determinism
// contract: installing a parallel fan-out runner must not change any
// cross-shard query result, in content or order.
func TestCrossShardQueriesSerialParallelIdentical(t *testing.T) {
	db := multiFloorDB(t, 4)
	for f := 1; f <= 4; f++ {
		for r := 0; r < 3; r++ {
			x := float64(r * 30)
			err := db.InsertObject(Object{
				GLOB: glob.MustParse(fmt.Sprintf("CS/Floor%d/room%d", f, r)),
				Type: "Room", Kind: glob.KindPolygon,
				LocalPoints: []geom.Point{
					{X: x, Y: 0}, {X: x + 20, Y: 0}, {X: x + 20, Y: 20}, {X: x, Y: 20},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	region := geom.R(0, 0, 500, 400) // spans every floor
	probe := geom.Pt(10, 110)

	serialObjs := db.Objects()
	serialInter := db.IntersectingObjects(region, ObjectFilter{})
	serialAt := db.ObjectsAt(probe, ObjectFilter{})
	serialNear := db.Nearest(probe, 5, ObjectFilter{})

	// A genuinely concurrent runner.
	db.SetFanout(func(n int, fn func(int)) {
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) { defer wg.Done(); fn(i) }(i)
		}
		wg.Wait()
	})
	defer db.SetFanout(nil)

	if got := db.Objects(); !reflect.DeepEqual(got, serialObjs) {
		t.Error("Objects() differs under parallel fan-out")
	}
	if got := db.IntersectingObjects(region, ObjectFilter{}); !reflect.DeepEqual(got, serialInter) {
		t.Error("IntersectingObjects differs under parallel fan-out")
	}
	if got := db.ObjectsAt(probe, ObjectFilter{}); !reflect.DeepEqual(got, serialAt) {
		t.Error("ObjectsAt differs under parallel fan-out")
	}
	if got := db.Nearest(probe, 5, ObjectFilter{}); !reflect.DeepEqual(got, serialNear) {
		t.Error("Nearest differs under parallel fan-out")
	}
}

// TestShardMetricNamesStable pins the registry names the shard layer
// exposes: dashboards and the mwctl stats surface key on these
// strings, so a rename is a breaking change and must fail here first.
func TestShardMetricNamesStable(t *testing.T) {
	if got := ShardMetricName("spatialdb_shard_inserts_total", "CS/Floor3"); got != `spatialdb_shard_inserts_total{shard="CS/Floor3"}` {
		t.Errorf("ShardMetricName = %q", got)
	}
	db := multiFloorDB(t, 2)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	before := obs.Default().Counter(ShardMetricName("spatialdb_shard_inserts_total", "CS/Floor2")).Value()
	if err := db.InsertReading(floorReading("s1", "m", 2, 5, 5, t0)); err != nil {
		t.Fatal(err)
	}
	db.Snapshot()
	snap := obs.Default().Snapshot()
	names := make(map[string]bool)
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, want := range []string{
		"spatialdb_shards",
		"spatialdb_shard_migrations_total",
		"spatialdb_snapshots_total",
		"spatialdb_snapshot_clones_total",
		"spatialdb_snapshot_age_us",
		"spatialdb_snapshot_pool_hits",
		"spatialdb_snapshot_pool_recycled",
		"spatialdb_snapshot_pool_live",
		"spatialdb_snapshot_capture_retries_total",
		"spatialdb_snapshot_escalations_total",
		`spatialdb_shard_inserts_total{shard="CS/Floor2"}`,
		`spatialdb_shard_rtree_nodes{shard="CS/Floor2"}`,
	} {
		if !names[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	after := obs.Default().Counter(ShardMetricName("spatialdb_shard_inserts_total", "CS/Floor2")).Value()
	if after != before+1 {
		t.Errorf("per-shard insert counter moved %d -> %d, want +1", before, after)
	}
}

// TestSnapshotCOWCloneOnlyOnWrite checks the cost model: taking a
// snapshot is free for writers until they actually write, and exactly
// one clone per shard per snapshot is paid.
func TestSnapshotCOWCloneOnlyOnWrite(t *testing.T) {
	db := multiFloorDB(t, 2)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(floorReading("s1", "m", 1, 5, 5, t0)); err != nil {
		t.Fatal(err)
	}
	base := mSnapClones.Value()
	db.Snapshot()
	if got := mSnapClones.Value(); got != base {
		t.Fatalf("snapshot alone cloned a table (%d -> %d)", base, got)
	}
	// First write on floor 1 after the snapshot pays one clone...
	if err := db.InsertReading(floorReading("s1", "m", 1, 6, 5, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	if got := mSnapClones.Value(); got != base+1 {
		t.Fatalf("first post-snapshot write: clones %d -> %d, want +1", base, got)
	}
	// ...and the second write on the same shard is clone-free.
	if err := db.InsertReading(floorReading("s1", "m", 1, 7, 5, t0.Add(2*time.Second))); err != nil {
		t.Fatal(err)
	}
	if got := mSnapClones.Value(); got != base+1 {
		t.Fatalf("steady-state write cloned again (%d -> %d)", base, got)
	}
}
