package spatialdb

import (
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// Federation support: the primitives the cross-daemon migration
// protocol is built from. A prepare/commit handoff exports an object's
// rows and epoch from the source daemon, imports them on the
// destination with an epoch guard (idempotent — a replayed prepare
// never double-applies), and only after the destination's ack does the
// source drop its copy. The source keeps serving reads and forwarding
// writes until that commit, so a crash on either side loses nothing.

// ShardKeyForGLOB maps a location to its floor shard key (the top-two
// symbolic path components). Exposed for the federation router, which
// partitions daemons by the same key the in-process shards use.
func ShardKeyForGLOB(g glob.GLOB) string { return shardKeyForGLOB(g) }

// ShardKeyForID maps an object GLOB string to its floor shard key
// without parsing.
func ShardKeyForID(id string) string { return shardKeyForID(id) }

// ObjectShardKey reports which local shard currently holds the
// object's reading rows, if any.
func (db *DB) ObjectShardKey(id string) (string, bool) {
	if sh := db.residentShard(id); sh != nil {
		return sh.key, true
	}
	return "", false
}

// ExportObject copies out the object's stored reading rows and its
// reading epoch — the migration prepare payload. The copy is taken
// atomically with residence, so a concurrent in-process floor change
// cannot tear it.
func (db *DB) ExportObject(id string) ([]model.Reading, uint64, bool) {
	for {
		sh := db.residentShard(id)
		if sh == nil {
			return nil, 0, false
		}
		sh.readMu.RLock()
		if db.residentShard(id) != sh {
			sh.readMu.RUnlock()
			continue // raced a migration; re-resolve
		}
		t := sh.table.Load()
		rows := append([]model.Reading(nil), t.rows[id]...)
		epoch := t.epochs[id]
		sh.readMu.RUnlock()
		return rows, epoch, true
	}
}

// readingKey identifies a stored row for the import merge: one sensor
// observing one object at one instant is one reading, however many
// times the migration protocol replays it.
type readingKey struct {
	sensor string
	atNano int64
	loc    string
}

func keyOf(r model.Reading) readingKey {
	return readingKey{sensor: r.SensorID, atNano: r.Time.UnixNano(), loc: r.Location.String()}
}

// ImportObject merges a migrated object's rows into the local table
// under an epoch guard. Rows are deduplicated by (sensor, time,
// location), so a replayed prepare — the destination restarted after
// acking, or the source retried after a lost ack — adds nothing; and a
// merge (rather than a replace) means rows a daemon accumulated while
// degraded are never clobbered by a handoff at a lower epoch. The
// local epoch advances to max(local, incoming)+1 when anything was
// applied — strictly greater than every value either side handed out,
// exactly like the in-process floor migration — and does not move on a
// pure replay, so epochs are never double-applied. Returns whether
// anything was applied; false (a pure replay, or stale state already
// covered locally) is still an ack-worthy outcome for the protocol.
func (db *DB) ImportObject(id string, rows []model.Reading, epoch uint64) bool {
	if id == "" {
		return false
	}
	key := rootShardKey
	if len(rows) > 0 {
		key = shardKeyForGLOB(rows[len(rows)-1].Location)
	}
	sh := db.ensureShard(key)
	// The whole merge runs in a cut bracket (cut.go), so a concurrent
	// snapshot sees the import entirely or not at all — this path held
	// cutMu shared before the epoch-vector protocol replaced it.
	db.beginBatch(sh)
	for {
		db.placeObject(id, sh)
		sh.readMu.Lock()
		if db.residentShard(id) != sh {
			sh.readMu.Unlock()
			continue // lost a race with another migration; re-place
		}
		t := sh.mutableTable()
		cur := t.epochs[id]
		have := make(map[readingKey]bool, len(t.rows[id]))
		for _, r := range t.rows[id] {
			have[keyOf(r)] = true
		}
		var fresh []model.Reading
		for _, r := range rows {
			if k := keyOf(r); !have[k] {
				have[k] = true
				fresh = append(fresh, r)
			}
		}
		if len(fresh) == 0 && epoch < cur {
			sh.readMu.Unlock()
			db.endBatchClean(sh) // pure replay: nothing visible changed
			return false
		}
		merged := append(append([]model.Reading(nil), t.rows[id]...), fresh...)
		if len(merged) > maxReadingsPerObject {
			merged = merged[len(merged)-maxReadingsPerObject:]
		}
		t.rows[id] = merged
		t.owned[id] = true
		t.resetSupport(id, merged)
		next := cur
		if epoch > next {
			next = epoch
		}
		t.epochs[id] = next + 1
		sh.writeEpoch.Add(1)
		sh.readMu.Unlock()
		db.endBatch(sh)
		mFedImports.Inc()
		return true
	}
}

// HasReading reports whether the object already stores a row with the
// same (sensor, time, location) identity. The forwarded-ingest path
// checks it to stay idempotent under at-least-once retries: a sender
// whose connection died after the owner stored the batch — but before
// the reply arrived — retries, and the replayed rows must not store
// twice.
func (db *DB) HasReading(r model.Reading) bool {
	sh := db.residentShard(r.MObjectID)
	if sh == nil {
		return false
	}
	sh.readMu.RLock()
	defer sh.readMu.RUnlock()
	k := keyOf(r)
	for _, have := range sh.table.Load().rows[r.MObjectID] {
		if keyOf(have) == k {
			return true
		}
	}
	return false
}

// DropObject removes the object's rows, epoch, and residence entry —
// the migration commit on the source after the destination acks. The
// drop happens only when the object's epoch still equals ifEpoch (the
// value exported in the prepare): readings that landed after the
// export are not covered by the destination's ack and must not be
// deleted — the caller re-exports and hands off again. Returns whether
// the drop happened.
func (db *DB) DropObject(id string, ifEpoch uint64) bool {
	for {
		cur, ok := db.residence.Load(id)
		if !ok {
			return false
		}
		sh := cur.(*shard)
		// The bracket is entered BEFORE migMu, per the lock order: a
		// bracket may park at the escalation gate, and parking while
		// holding migMu would deadlock the draining snapshot against
		// any admitted batch mid-placeObject.
		db.beginBatch(sh)
		// migMu serializes against placeObject so residence cannot move
		// the object to another shard between the re-check and the
		// table edit.
		db.migMu.Lock()
		if cur2, ok2 := db.residence.Load(id); !ok2 || cur2.(*shard) != sh {
			db.migMu.Unlock()
			db.endBatchClean(sh)
			if !ok2 {
				return false
			}
			continue // raced a migration while entering the bracket
		}
		sh.readMu.Lock()
		if sh.table.Load().epochs[id] != ifEpoch {
			sh.readMu.Unlock()
			db.migMu.Unlock()
			db.endBatchClean(sh)
			return false
		}
		t := sh.mutableTable()
		delete(t.rows, id)
		delete(t.owned, id)
		delete(t.epochs, id)
		t.resetSupport(id, nil)
		sh.writeEpoch.Add(1)
		db.residence.Delete(id)
		sh.readMu.Unlock()
		db.migMu.Unlock()
		db.endBatch(sh)
		mFedDrops.Inc()
		return true
	}
}

// LocalShardKeys returns the keys of the shards this database has
// materialized, sorted — what a daemon advertises in its placement
// lease alongside its configured floors.
func (db *DB) LocalShardKeys() []string {
	shards := db.allShards()
	out := make([]string, 0, len(shards))
	for _, sh := range shards {
		out = append(out, sh.key)
	}
	return out
}
