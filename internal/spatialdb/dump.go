package spatialdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"middlewhere/internal/model"
)

// DumpObjectTable renders the object table in the layout of the
// paper's Table 1: ObjectIdentifier, GlobPrefix, ObjectType,
// GeometryType, Points. Rows are sorted by GLOB.
func (db *DB) DumpObjectTable() string {
	objs := db.Objects()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s | %-20s | %-10s | %-8s | %s\n",
		"ObjectIdentifier", "GlobPrefix", "ObjectType", "GeomType", "Points")
	for _, o := range objs {
		var pts []string
		for _, p := range o.LocalPoints {
			pts = append(pts, fmt.Sprintf("(%s,%s)", ftoa(p.X), ftoa(p.Y)))
		}
		fmt.Fprintf(&b, "%-16s | %-20s | %-10s | %-8s | %s\n",
			o.GLOB.Name(), o.GLOB.Prefix().String(), o.Type, o.Kind, strings.Join(pts, ", "))
	}
	return b.String()
}

// DumpReadingTable renders all stored readings in the layout of the
// paper's Table 2: SensorId, GlobPrefix, SensorType, MObjectId,
// ObjLocation, DetectionRadius, DetectionTime.
func (db *DB) DumpReadingTable() string {
	byID := make(map[string][]model.Reading)
	for _, sh := range db.allShards() {
		sh.readMu.RLock()
		for id, rs := range sh.table.Load().rows {
			byID[id] = append(byID[id], rs...)
		}
		sh.readMu.RUnlock()
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var rows []model.Reading
	for _, id := range ids {
		rows = append(rows, byID[id]...)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s | %-18s | %-12s | %-10s | %-12s | %-9s | %s\n",
		"SensorId", "GlobPrefix", "SensorType", "MObjectId", "ObjLocation", "DetRadius", "DetTime")
	for _, r := range rows {
		loc := ""
		if len(r.Location.Coords) > 0 {
			loc = r.Location.Coords[0].String()
		} else {
			loc = r.Location.Name()
		}
		fmt.Fprintf(&b, "%-8s | %-18s | %-12s | %-10s | %-12s | %-9s | %s\n",
			r.SensorID, r.Location.Prefix().String(), r.SensorType, r.MObjectID,
			loc, ftoa(r.DetectionRadius), r.Time.Format("15:04:05"))
	}
	return b.String()
}

// DumpSensorTable renders the sensor metadata table of §5.2:
// SensorId, Confidence(%), Time-to-live(s).
func (db *DB) DumpSensorTable() string {
	specs := db.sensorView.Load().specs
	ids := make([]string, 0, len(specs))
	for id := range specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %-13s | %s\n", "SensorId", "Confidence(%)", "Time-to-live(s)")
	for _, id := range ids {
		spec := specs[id]
		conf := spec.Errors.DetectProb() * 100
		fmt.Fprintf(&b, "%-12s | %-13.0f | %.0f\n", id, conf, spec.TTL.Seconds())
	}
	return b.String()
}

// ftoa formats floats compactly for table output.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
