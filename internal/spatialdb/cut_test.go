package spatialdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"middlewhere/internal/model"
)

// TestCutConcurrentIngestNeverTornNeverBlocked is the cut-protocol
// stress test (run under -race): continuous snapshot cuts race
// single-shard InsertReadings batches on every floor. Two invariants:
//
//  1. No cut ever observes a torn batch — every object's visible row
//     count is a whole number of batches (the PR-5 atomicity contract,
//     re-asserted against the lock-free protocol under heavier cut
//     pressure).
//  2. Ingest never parks at the cut gate: the optimistic sweep must
//     absorb this load without escalating into writers, which the
//     spatialdb_cut_wait_us histogram proves — it observes only when
//     a bracket actually waited, so its count must not move.
func TestCutConcurrentIngestNeverTornNeverBlocked(t *testing.T) {
	const (
		floors    = 4
		batchLen  = 4
		batches   = 10
		objPerFlr = 2
	)
	if batchLen*batches >= maxReadingsPerObject {
		t.Fatal("test misconfigured: trimming would break the invariant")
	}
	db := multiFloorDB(t, floors)
	for s := 0; s < batchLen; s++ {
		if err := db.RegisterSensor(fmt.Sprintf("s%d", s), longSpec()); err != nil {
			t.Fatal(err)
		}
	}
	waitBase := mCutWaitUs.Count()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var cuts atomic.Int64
	// Writers: one goroutine per object, single-shard batches.
	for f := 1; f <= floors; f++ {
		for o := 0; o < objPerFlr; o++ {
			f, obj := f, fmt.Sprintf("obj-%d-%d", f, o)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					batch := make([]model.Reading, batchLen)
					for s := 0; s < batchLen; s++ {
						batch[s] = floorReading(fmt.Sprintf("s%d", s), obj, f,
							float64(b), float64(s), t0.Add(time.Duration(b)*time.Millisecond))
					}
					if n, err := db.InsertReadings(batch, nil); err != nil || n != batchLen {
						t.Errorf("insert batch: n=%d err=%v", n, err)
						return
					}
				}
			}()
		}
	}
	// Cutters: hammer Snapshot as fast as it will go and check every
	// object for a torn batch on each cut.
	var cutters sync.WaitGroup
	for r := 0; r < 2; r++ {
		cutters.Add(1)
		go func() {
			defer cutters.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.Snapshot()
				cuts.Add(1)
				for f := 1; f <= floors; f++ {
					for o := 0; o < objPerFlr; o++ {
						obj := fmt.Sprintf("obj-%d-%d", f, o)
						if n := len(snap.ReadingsFor(obj, t0)); n%batchLen != 0 {
							t.Errorf("cut saw %d rows for %s: torn batch", n, obj)
							snap.Close()
							return
						}
					}
				}
				snap.Close()
			}
		}()
	}
	wg.Wait()
	// On a single-CPU box the writers can finish before a cutter ever
	// gets scheduled; make sure at least one cut ran before stopping.
	for cuts.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	cutters.Wait()
	// The never-blocks half: nothing parked at the gate. (An
	// escalation alone is not a failure — it is the bounded fallback —
	// but under single-shard batches the sweep should win without one,
	// and the hard contract is that ingest never waited.)
	if got := mCutWaitUs.Count(); got != waitBase {
		t.Errorf("ingest parked at the cut gate %d times; cuts must not block ingest", got-waitBase)
	}
	// Every batch landed despite the cut pressure.
	final := db.Snapshot()
	defer final.Close()
	for f := 1; f <= floors; f++ {
		for o := 0; o < objPerFlr; o++ {
			obj := fmt.Sprintf("obj-%d-%d", f, o)
			if n := len(final.ReadingsFor(obj, t0)); n != batchLen*batches {
				t.Errorf("%s: final rows = %d, want %d", obj, n, batchLen*batches)
			}
		}
	}
}

// TestSnapshotPoolLeak pins the handle accounting: every Snapshot
// handle Closed ⇒ the live gauge returns to its baseline, and extra
// Closes don't drive it negative.
func TestSnapshotPoolLeak(t *testing.T) {
	db := multiFloorDB(t, 2)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(floorReading("s1", "m", 1, 5, 5, t0)); err != nil {
		t.Fatal(err)
	}
	base := mSnapPoolLive.Value()
	var snaps []*Snapshot
	for i := 0; i < 5; i++ {
		snaps = append(snaps, db.Snapshot())
		if i%2 == 1 {
			// Mutate so later iterations mix pool hits and fresh cuts.
			if err := db.InsertReading(floorReading("s1", "m", 1, float64(6+i), 5,
				t0.Add(time.Duration(i)*time.Second))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := mSnapPoolLive.Value(); got != base+5 {
		t.Fatalf("live gauge after 5 opens = %v, want %v", got, base+5)
	}
	for _, s := range snaps {
		s.Close()
	}
	if got := mSnapPoolLive.Value(); got != base {
		t.Fatalf("live gauge after closing all = %v, want baseline %v: leaked handles", got, base)
	}
	// Double-close and nil-close are no-ops, not gauge corruption.
	snaps[0].Close()
	(*Snapshot)(nil).Close()
	if got := mSnapPoolLive.Value(); got != base {
		t.Fatalf("live gauge after double close = %v, want %v", got, base)
	}
}

// TestSnapshotPoolReuse pins the pool semantics: consecutive cuts with
// no intervening mutation share one Snapshot (a pool hit), any
// mutation forces a fresh capture, and ageing past snapPoolMaxAge
// expires the pooled cut even when nothing changed.
func TestSnapshotPoolReuse(t *testing.T) {
	db := multiFloorDB(t, 2)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(floorReading("s1", "m", 1, 5, 5, t0)); err != nil {
		t.Fatal(err)
	}
	hitsBase := mSnapPoolHits.Value()

	s1 := db.Snapshot()
	s2 := db.Snapshot()
	if s1 != s2 {
		t.Error("unchanged database: second cut must reuse the pooled snapshot")
	}
	if got := mSnapPoolHits.Value(); got != hitsBase+1 {
		t.Errorf("pool hits = %d, want %d", got, hitsBase+1)
	}

	// A mutation invalidates the pooled cut.
	if err := db.InsertReading(floorReading("s1", "m", 1, 6, 5, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	s3 := db.Snapshot()
	if s3 == s2 {
		t.Error("cut after a mutation must not reuse the stale pooled snapshot")
	}
	if got := len(s2.ReadingsFor("m", t0.Add(time.Second))); got != 1 {
		t.Errorf("old snapshot changed under reuse: rows = %d, want 1", got)
	}
	if got := len(s3.ReadingsFor("m", t0.Add(time.Second))); got != 2 {
		t.Errorf("fresh snapshot rows = %d, want 2", got)
	}

	// Age-based recycling: an old pooled cut is not reused even when
	// the epoch vector says nothing changed.
	old := snapPoolMaxAge
	snapPoolMaxAge = 0
	defer func() { snapPoolMaxAge = old }()
	s4 := db.Snapshot()
	if s4 == s3 {
		t.Error("pooled snapshot past max age must be recycled, not reused")
	}
	for _, s := range []*Snapshot{s1, s2, s3, s4} {
		s.Close()
	}
}

// TestSnapshotPoolUnchangedShardCloneReuse extends the COW cost model
// across cuts: when only one floor mutates between two cuts, the other
// floor's table clone is carried over — the second cut does not force
// the quiet floor's next writer to clone again.
func TestSnapshotPoolUnchangedShardCloneReuse(t *testing.T) {
	db := multiFloorDB(t, 2)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	for f := 1; f <= 2; f++ {
		if err := db.InsertReading(floorReading("s1", fmt.Sprintf("m%d", f), f, 5, 5, t0)); err != nil {
			t.Fatal(err)
		}
	}
	s1 := db.Snapshot()
	defer s1.Close()
	// Mutate floor 1 only, then cut again.
	if err := db.InsertReading(floorReading("s1", "m1", 1, 6, 5, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	s2 := db.Snapshot()
	defer s2.Close()
	if s1 == s2 {
		t.Fatal("mutation must force a fresh snapshot")
	}
	if s1.shards[1].table != s2.shards[1].table {
		t.Error("quiet floor's table clone must carry over between cuts")
	}
	if s1.shards[0].table == s2.shards[0].table {
		t.Error("mutated floor must be recaptured")
	}
	base := mSnapClones.Value()
	// The quiet floor was already frozen by s1; the next write there
	// pays exactly one clone, same as with a single cut.
	if err := db.InsertReading(floorReading("s1", "m2", 2, 6, 5, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	if got := mSnapClones.Value(); got != base+1 {
		t.Errorf("quiet floor's first post-cut write: clones %d -> %d, want +1", base, got)
	}
}
