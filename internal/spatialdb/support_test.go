package spatialdb

import (
	"fmt"
	"testing"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// checkSupportInvariant asserts the support-index contract on every
// shard table (DESIGN.md §17): one R-tree entry per object with stored
// rows, the cached supRect mirrors the tree entry, and the rect is a
// conservative superset of the bounding box of the object's stored
// reading regions. Exactness is NOT required — trims keep the old
// union — but a missing or too-small rect would make SupportCandidates
// drop gate-passing objects.
func checkSupportInvariant(t *testing.T, db *DB) {
	t.Helper()
	for _, sh := range db.allShards() {
		tbl := sh.table.Load()
		if got, want := tbl.support.Len(), len(tbl.supRect); got != want {
			t.Fatalf("shard %s: support tree has %d entries, supRect has %d", sh.key, got, want)
		}
		for id, rows := range tbl.rows {
			sup, ok := tbl.supRect[id]
			if len(rows) == 0 {
				if ok {
					t.Fatalf("shard %s: %s has no rows but supRect %v", sh.key, id, sup)
				}
				continue
			}
			if !ok {
				t.Fatalf("shard %s: %s has %d rows but no support rect", sh.key, id, len(rows))
			}
			u := rows[0].Region
			for _, r := range rows[1:] {
				u = u.Union(r.Region)
			}
			if !sup.ContainsRect(u) {
				t.Fatalf("shard %s: %s support %v does not cover row bbox %v", sh.key, id, sup, u)
			}
			found := false
			tbl.support.SearchIntersectFunc(sup, func(r geom.Rect, got string) bool {
				if got == id && r.Eq(sup) {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("shard %s: %s supRect %v not present in the R-tree", sh.key, id, sup)
			}
		}
		for id := range tbl.supRect {
			if len(tbl.rows[id]) == 0 {
				t.Fatalf("shard %s: supRect entry %s has no stored rows", sh.key, id)
			}
		}
	}
}

// candidateIDs snapshots the database and returns the support
// candidates for region as a set.
func candidateIDs(db *DB, region geom.Rect) map[string]bool {
	snap := db.Snapshot()
	defer snap.Close()
	out := map[string]bool{}
	for _, c := range snap.SupportCandidates(region) {
		out[c.ID] = true
	}
	return out
}

func TestSupportIndexTracksMutations(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	spec := ubiSpec()
	spec.TTL = 10 * time.Second
	if err := db.RegisterSensor("s1", spec); err != nil {
		t.Fatal(err)
	}
	ingest := func(obj string, x, y float64, at time.Time) {
		t.Helper()
		err := db.InsertReading(model.Reading{
			SensorID:  "s1",
			MObjectID: obj,
			Location:  glob.CoordinatePoint(glob.MustParse("CS/Floor3"), geom.Pt(x, y)),
			Time:      at,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Two objects at opposite ends of the floor.
	ingest("west", 10, 10, t0)
	ingest("east", 480, 80, t0)
	checkSupportInvariant(t, db)

	left := candidateIDs(db, geom.R(0, 0, 50, 50))
	if !left["west"] || left["east"] {
		t.Fatalf("left-region candidates = %v, want exactly {west}", left)
	}
	right := candidateIDs(db, geom.R(450, 50, 500, 100))
	if right["west"] || !right["east"] {
		t.Fatalf("right-region candidates = %v, want exactly {east}", right)
	}

	// A second reading grows the support to the union of both regions.
	ingest("west", 200, 50, t0.Add(time.Second))
	checkSupportInvariant(t, db)
	mid := candidateIDs(db, geom.R(150, 40, 250, 60))
	if !mid["west"] {
		t.Fatalf("mid-region candidates = %v, want west after its support grew", mid)
	}

	// TTL prune (via ReadingsFor) drops the whole object: the support
	// entry must go with the rows.
	if rows := db.ReadingsFor("west", t0.Add(time.Hour)); len(rows) != 0 {
		t.Fatalf("expected all of west's rows expired, got %d", len(rows))
	}
	checkSupportInvariant(t, db)
	if after := candidateIDs(db, geom.R(0, 0, 500, 100)); after["west"] {
		t.Fatal("west still a candidate after its rows expired")
	}

	// Matcher-based expiry recomputes the surviving support exactly.
	ingest("east", 20, 20, t0.Add(2*time.Second))
	db.ExpireReadings(t0.Add(3*time.Second), func(r model.Reading) bool {
		// Drop east's original far-corner reading, keep the new one.
		return r.MObjectID == "east" && r.Time.Equal(t0)
	})
	checkSupportInvariant(t, db)
	if ids := candidateIDs(db, geom.R(450, 50, 500, 100)); ids["east"] {
		t.Fatal("east still a far-corner candidate after that reading was expired")
	}
	if ids := candidateIDs(db, geom.R(0, 0, 50, 50)); !ids["east"] {
		t.Fatal("east lost its surviving reading's support")
	}
}

// TestSupportCandidatesSnapshotIsolation pins the COW contract: a
// frozen snapshot's candidate set must not change when writers keep
// mutating the live table — the support R-tree rides the same
// clone-on-freeze machinery as the reading rows.
func TestSupportCandidatesSnapshotIsolation(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("s1", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	ingest := func(obj string, x, y float64, at time.Time) {
		t.Helper()
		err := db.InsertReading(model.Reading{
			SensorID:  "s1",
			MObjectID: obj,
			Location:  glob.CoordinatePoint(glob.MustParse("CS/Floor3"), geom.Pt(x, y)),
			Time:      at,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ingest("ann", 10, 10, t0)

	snap := db.Snapshot()
	defer snap.Close()

	// Grow ann's support to the far corner and add a new object after
	// the cut.
	ingest("ann", 480, 80, t0.Add(time.Second))
	ingest("late", 480, 10, t0.Add(time.Second))
	checkSupportInvariant(t, db)

	far := geom.R(450, 0, 500, 100)
	old := map[string]bool{}
	for _, c := range snap.SupportCandidates(far) {
		old[c.ID] = true
	}
	if len(old) != 0 {
		t.Fatalf("frozen snapshot sees post-cut supports: %v", old)
	}
	if now := candidateIDs(db, far); !now["ann"] || !now["late"] {
		t.Fatalf("fresh snapshot candidates = %v, want {ann, late}", now)
	}
}

// TestSupportIndexFollowsFloorMigration moves an object between floor
// shards and checks the support entry moves with the rows: the old
// shard forgets it, the new shard's rect covers every surviving row —
// including the previous floor's regions, so a support can straddle
// shard boundaries and cross-shard queries still see it.
func TestSupportIndexFollowsFloorMigration(t *testing.T) {
	db := multiFloorDB(t, 2)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(floorReading("s1", "mover", 1, 100, 50, t0)); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(floorReading("s1", "mover", 2, 100, 50, t0.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	checkSupportInvariant(t, db)

	key, ok := db.ObjectShardKey("mover")
	if !ok || key != "CS/Floor2" {
		t.Fatalf("mover resident on %q, want CS/Floor2", key)
	}
	for _, sh := range db.allShards() {
		tbl := sh.table.Load()
		_, has := tbl.supRect["mover"]
		if sh.key == "CS/Floor2" && !has {
			t.Fatal("destination shard has no support entry for mover")
		}
		if sh.key == "CS/Floor1" && has {
			t.Fatal("source shard still indexes mover after migration")
		}
	}
	// The migrated support still covers the floor-1 reading (universe
	// y in [0,100)), so a floor-1 query finds the straddling object.
	if ids := candidateIDs(db, geom.R(0, 0, 500, 100)); !ids["mover"] {
		t.Fatal("floor-1 query lost the migrated object's old-floor support")
	}
}

// TestSupportIndexFederationImportDrop drives the cross-daemon
// migration primitives and checks the index on both sides.
func TestSupportIndexFederationImportDrop(t *testing.T) {
	src := multiFloorDB(t, 2)
	dst := multiFloorDB(t, 2)
	for _, db := range []*DB{src, dst} {
		if err := db.RegisterSensor("s1", longSpec()); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.InsertReading(floorReading("s1", "nomad", 1, 50, 50, t0)); err != nil {
		t.Fatal(err)
	}
	rows, epoch, ok := src.ExportObject("nomad")
	if !ok {
		t.Fatal("export failed")
	}
	if !dst.ImportObject("nomad", rows, epoch) {
		t.Fatal("import applied nothing")
	}
	checkSupportInvariant(t, dst)
	if ids := candidateIDs(dst, geom.R(0, 0, 500, 100)); !ids["nomad"] {
		t.Fatal("imported object not indexed on the destination")
	}
	if !src.DropObject("nomad", epoch) {
		t.Fatal("drop refused")
	}
	checkSupportInvariant(t, src)
	if ids := candidateIDs(src, geom.R(0, 0, 500, 100)); ids["nomad"] {
		t.Fatal("dropped object still indexed on the source")
	}
}

// TestSupportSurvivesRingTrim fills an object past the per-object row
// cap: the ring-buffer trim keeps the stored support a (possibly
// stale-covering) superset of the surviving rows, and the object stays
// exactly one R-tree entry.
func TestSupportSurvivesRingTrim(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("s1", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*maxReadingsPerObject; i++ {
		err := db.InsertReading(model.Reading{
			SensorID:  "s1",
			MObjectID: "walker",
			Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"),
				geom.Pt(float64(i%400), 10)),
			Time: t0.Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	checkSupportInvariant(t, db)
	for _, sh := range db.allShards() {
		tbl := sh.table.Load()
		if n := len(tbl.rows["walker"]); n > 0 {
			if tbl.support.Len() != 1 {
				t.Fatalf("support tree has %d entries, want 1", tbl.support.Len())
			}
			if n > maxReadingsPerObject {
				t.Fatalf("trim failed: %d rows stored", n)
			}
		}
	}
	if ids := candidateIDs(db, geom.R(0, 0, 500, 100)); !ids["walker"] {
		t.Fatal("walker lost its support entry across trims")
	}
}

// TestSupportCandidatesSorted pins the deterministic ordering the
// heatmap's index-addressed merge depends on.
func TestSupportCandidatesSorted(t *testing.T) {
	db := multiFloorDB(t, 3)
	if err := db.RegisterSensor("s1", longSpec()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		obj := fmt.Sprintf("p%d", 8-i) // insert in reverse name order
		if err := db.InsertReading(floorReading("s1", obj, 1+i%3, float64(20+i*40), 50, t0)); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	defer snap.Close()
	cands := snap.SupportCandidates(db.Universe())
	if len(cands) != 9 {
		t.Fatalf("candidates = %d, want 9", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].ID >= cands[i].ID {
			t.Fatalf("candidates not sorted: %q before %q", cands[i-1].ID, cands[i].ID)
		}
	}
}
