package spatialdb

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
)

// ---------------------------------------------------------------------------
// Sensor metadata table (§5.2)

// RegisterSensor records a sensor instance and its calibrated spec in
// the sensor metadata table. The table is copy-on-write: a new view is
// published atomically, so spec lookups on the ingest and locate paths
// never take a lock.
func (db *DB) RegisterSensor(sensorID string, spec model.SensorSpec) error {
	if sensorID == "" {
		return fmt.Errorf("%w: empty sensor id", ErrUnknownSensor)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	db.sensorRegMu.Lock()
	defer db.sensorRegMu.Unlock()
	cur := db.sensorView.Load()
	specs := make(map[string]model.SensorSpec, len(cur.specs)+1)
	for id, s := range cur.specs {
		specs[id] = s
	}
	specs[sensorID] = spec
	db.sensorView.Store(&sensorTable{specs: specs, gen: cur.gen + 1})
	return nil
}

// SensorSpec returns the spec registered for a sensor.
func (db *DB) SensorSpec(sensorID string) (model.SensorSpec, error) {
	spec, ok := db.sensorView.Load().specs[sensorID]
	if !ok {
		return model.SensorSpec{}, fmt.Errorf("%w: %s", ErrUnknownSensor, sensorID)
	}
	return spec, nil
}

// Sensors returns the registered sensor IDs, sorted.
func (db *DB) Sensors() []string {
	specs := db.sensorView.Load().specs
	out := make([]string, 0, len(specs))
	for id := range specs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SensorGeneration returns a counter bumped on every sensor
// registration. Callers that derive state from the whole sensor table
// (the fusion classifier, per-sensor spec lookups on the query path)
// memoize against it and revalidate with one atomic load.
func (db *DB) SensorGeneration() uint64 { return db.sensorView.Load().gen }

// SensorSnapshot returns a copy of the sensor metadata table together
// with the generation it was taken at. The copy is the caller's to
// keep; the generation lets it revalidate with one atomic load instead
// of a lock per spec lookup.
func (db *DB) SensorSnapshot() (map[string]model.SensorSpec, uint64) {
	view := db.sensorView.Load()
	out := make(map[string]model.SensorSpec, len(view.specs))
	for id, spec := range view.specs {
		out[id] = spec
	}
	return out, view.gen
}

// ---------------------------------------------------------------------------
// Reading table (Table 2)

// TriggerFiring pairs a matched trigger callback with the event it
// should receive. InsertReadings hands the batch's firings to a
// FiringDispatcher so the caller can fan evaluation out.
type TriggerFiring struct {
	Fn    TriggerFunc
	Event TriggerEvent
}

// FiringDispatcher runs a batch's trigger firings. It is called at
// most once per InsertReadings call, after the rows are stored and all
// table locks are released, and must run every firing before
// returning. Firings for the same mobile object appear in reading
// order; a dispatcher may parallelize across objects but should
// preserve that per-object order (entry/exit edge detection depends on
// it).
type FiringDispatcher func([]TriggerFiring)

// RejectedError reports the readings of an insert that failed
// validation (unknown sensor, missing mobject id, unresolvable
// location). It covers only the rejected readings: the rest of the
// batch was stored, so re-submitting the whole batch would duplicate
// the stored rows. Callers that retry (the resilient adapter sink, a
// remote client) must retry only the listed indices.
type RejectedError struct {
	// Indices are the rejected readings' positions in the submitted
	// slice, ascending.
	Indices []int
	// Errs holds the per-reading failures, parallel to Indices.
	Errs []error
}

func (e *RejectedError) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	return fmt.Sprintf("spatialdb: %d readings rejected: %v", len(e.Errs), errors.Join(e.Errs...))
}

// Unwrap exposes the per-reading failures to errors.Is / errors.As.
func (e *RejectedError) Unwrap() []error { return e.Errs }

// InsertReading stores a sensor reading (resolving its location to a
// universe-frame MBR if the adapter has not already) and fires any
// matching triggers synchronously. The sensor must be registered.
func (db *DB) InsertReading(r model.Reading) error {
	_, err := db.InsertReadings([]model.Reading{r}, nil)
	return err
}

// placeObject pins a mobile object's reading rows (and its epoch
// counter) to the target shard. When the object last reported on a
// different floor, its rows and epoch migrate: the epoch carries over
// +1, so it stays strictly monotonic across any number of floor
// changes and a fused-location cache entry keyed on the old shard's
// counter can never collide with the new shard's values. Placement
// changes serialize on migMu; the overwhelmingly common same-shard
// case returns after one lock-free map read.
func (db *DB) placeObject(id string, to *shard) {
	if cur, ok := db.residence.Load(id); ok && cur.(*shard) == to {
		return
	}
	db.migMu.Lock()
	defer db.migMu.Unlock()
	cur, ok := db.residence.Load(id)
	if !ok {
		db.residence.Store(id, to)
		return
	}
	from := cur.(*shard)
	if from == to {
		return
	}
	// Nested cut bracket on the source shard: the caller's bracket
	// already covers `to`, but a cut sweeping `from` must also see this
	// migration in flight. pending is bumped WITHOUT the gate check —
	// waiting on the gate here would deadlock against a draining
	// snapshot that is itself waiting for the enclosing bracket (see
	// cut.go).
	from.pending.Add(1)
	// Move rows and the epoch under both shard locks, taken in key
	// order so concurrent migrations cannot deadlock.
	a, b := from, to
	if b.key < a.key {
		a, b = b, a
	}
	a.readMu.Lock()
	b.readMu.Lock()
	tf := from.mutableTable()
	tt := to.mutableTable()
	if rows, ok := tf.rows[id]; ok {
		tt.rows[id] = rows
		delete(tf.rows, id)
		delete(tf.owned, id)
		// The support entry migrates with the rows: exact on the
		// destination (recomputed from the moved rows), removed from
		// the source.
		tf.resetSupport(id, nil)
		tt.resetSupport(id, rows)
	}
	tt.epochs[id] = tf.epochs[id] + 1
	delete(tf.epochs, id)
	from.writeEpoch.Add(1)
	to.writeEpoch.Add(1)
	from.cutSeq.Add(1)
	to.cutSeq.Add(1)
	db.residence.Store(id, to)
	b.readMu.Unlock()
	a.readMu.Unlock()
	from.pending.Add(-1)
	db.wakeCutWaiters()
	mMigrations.Inc()
}

// residentShard returns the shard currently holding the object's
// reading rows, or nil when the object has none.
func (db *DB) residentShard(id string) *shard {
	if cur, ok := db.residence.Load(id); ok {
		return cur.(*shard)
	}
	return nil
}

// InsertReadings stores a slice of readings with one lock acquisition
// per target shard instead of one per reading, amortizing the hot-path
// cost for batched adapters. Readings that fail validation are
// skipped; the rest are stored. It returns the number stored and, when
// any reading was skipped, a *RejectedError naming the skipped
// indices — never retry the whole batch on that error, the other rows
// are already in the table.
//
// Readings shard by their location's floor prefix, so batches for
// independent floors take disjoint locks and ingest in parallel; the
// only cross-floor coordination is the lock-free cut bracket (cut.go),
// which lets Snapshot exclude in-flight batches (no snapshot ever
// observes part of a batch) without any global mutex.
//
// Trigger firings for the whole batch are collected and then run via
// dispatch; a nil dispatch runs them serially in insertion order,
// which makes InsertReadings(rs, nil) observably equivalent to
// len(rs) InsertReading calls. Insert hooks run last, per stored
// reading in order, as in the single-insert path.
func (db *DB) InsertReadings(rs []model.Reading, dispatch FiringDispatcher) (int, error) {
	if len(rs) == 0 {
		return 0, nil
	}
	start := time.Now()

	// Phase 1 — validate and resolve regions. Sensor specs come from
	// the lock-free view; symbolic locations resolve against their own
	// shard's object table.
	sensors := db.sensorView.Load().specs
	prepared := make([]model.Reading, 0, len(rs))
	var errs []error
	var rejected []int
	for i, r := range rs {
		if r.MObjectID == "" {
			mInsertErrors.Inc()
			rejected = append(rejected, i)
			errs = append(errs, fmt.Errorf("spatialdb: reading without mobject id"))
			continue
		}
		spec, ok := sensors[r.SensorID]
		if !ok {
			mInsertErrors.Inc()
			rejected = append(rejected, i)
			errs = append(errs, fmt.Errorf("%w: %s", ErrUnknownSensor, r.SensorID))
			continue
		}
		if r.SensorType == "" {
			r.SensorType = spec.Type
		}
		if !r.Region.Valid() || r.Region.Area() == 0 {
			rect, err := db.resolveReading(r, spec)
			if err != nil {
				mInsertErrors.Inc()
				rejected = append(rejected, i)
				errs = append(errs, fmt.Errorf("insert reading from %s: %w", r.SensorID, err))
				continue
			}
			r.Region = rect
		}
		prepared = append(prepared, r)
	}

	// Group the prepared readings by target shard, in order of first
	// appearance: a batch that interleaves floors still applies each
	// object's readings in submission order. Grouping keys on the raw
	// path components ([2]string is comparable) so the hot loop builds
	// no key strings; ids collects each group's distinct objects once,
	// so residence placement pays per object, not per reading.
	type shardGroup struct {
		key  string
		idxs []int
		ids  []string
	}
	var groups []*shardGroup
	byKey := make(map[[2]string]*shardGroup, 4)
	for i := range prepared {
		var pk [2]string
		if p := prepared[i].Location.Path; len(p) > 0 {
			pk[0] = p[0]
			if len(p) > 1 {
				pk[1] = p[1]
			}
		}
		g, ok := byKey[pk]
		if !ok {
			g = &shardGroup{key: shardKeyForGLOB(prepared[i].Location)}
			byKey[pk] = g
			groups = append(groups, g)
		}
		g.idxs = append(g.idxs, i)
		id := prepared[i].MObjectID
		seen := false
		for _, have := range g.ids {
			if have == id {
				seen = true
				break
			}
		}
		if !seen {
			g.ids = append(g.ids, id)
		}
	}

	// Phase 2 — store each group under its own shard's write lock:
	// movement detection, append, bound, and the per-object epoch bump
	// that invalidates fused-location caches. The whole phase runs in
	// one cut bracket spanning every target shard, so a concurrent
	// Snapshot sees either none or all of this batch (cut.go) — with no
	// global mutex on this path.
	shs := make([]*shard, len(groups))
	for i, g := range groups {
		shs[i] = db.ensureShard(g.key)
	}
	db.beginBatch(shs...)
	for gi, g := range groups {
		sh := shs[gi]
		for {
			// Pin every distinct object of the group to this shard
			// (migrating rows from a previous floor if needed), then
			// verify the placement still holds under the shard lock: a
			// migration cannot move rows out of sh while we hold its
			// write lock, so a verified placement stays true for the
			// whole store.
			for _, id := range g.ids {
				db.placeObject(id, sh)
			}
			sh.readMu.Lock()
			placed := true
			for _, id := range g.ids {
				if db.residentShard(id) != sh {
					placed = false
					break
				}
			}
			if placed {
				break
			}
			sh.readMu.Unlock() // lost a race with another batch's migration; re-place
		}
		t := sh.mutableTable()
		for _, i := range g.idxs {
			r := &prepared[i]
			rows := t.rows[r.MObjectID]
			// Movement detection: compare with the previous reading
			// from the same sensor for the same object.
			for j := len(rows) - 1; j >= 0; j-- {
				if rows[j].SensorID == r.SensorID {
					if !rows[j].Region.Eq(r.Region) {
						r.Moving = true
					}
					break
				}
			}
			// Bound per-object storage: long-TTL sensors (desktop
			// sessions, biometric long readings) must not accumulate
			// without limit. The newest rows win; fusion only consumes
			// the latest row per sensor anyway. An owned slice trims as
			// a ring buffer: re-slicing off the head is O(1) and the
			// append below reuses the backing array's spare capacity,
			// re-basing (one O(cap) copy) only every ~cap inserts — so
			// steady-state trim at the cap is O(1) amortized instead of
			// an O(cap) copy per insert. A backing array inherited from
			// a frozen snapshot table must never be re-sliced or
			// rewritten; it is replaced with a fresh 2x-cap array once,
			// after which the object is owned and rides the ring.
			if len(rows) >= maxReadingsPerObject {
				keep := rows[len(rows)-maxReadingsPerObject+1:]
				if t.owned[r.MObjectID] {
					rows = keep
				} else {
					rows = append(make([]model.Reading, 0, 2*maxReadingsPerObject), keep...)
					t.owned[r.MObjectID] = true
				}
			}
			t.rows[r.MObjectID] = append(rows, *r)
			t.epochs[r.MObjectID]++
			// Insert keeps the support index a conservative superset:
			// union-only growth here, exact recompute on prune/expiry.
			t.growSupport(r.MObjectID, r.Region)
		}
		sh.writeEpoch.Add(1)
		sh.readMu.Unlock()
		sh.inserts.Add(uint64(len(g.idxs)))
		sh.mInserts.Add(uint64(len(g.idxs)))
	}
	db.endBatch(shs...)

	// Phase 3 — match triggers for the whole batch under the shared
	// trigger lock; firing happens after release. Matching iterates the
	// batch in submission order, so per-object firing order is
	// preserved regardless of how storage grouped by shard.
	visits0 := db.triggerIdx.Visits()
	var firings []TriggerFiring
	db.trigMu.RLock()
	for _, r := range prepared {
		for _, it := range db.triggerIdx.SearchIntersect(r.Region) {
			tr := db.triggers[it.ID]
			if tr == nil {
				continue
			}
			if tr.mobject != "" && tr.mobject != r.MObjectID {
				continue
			}
			firings = append(firings, TriggerFiring{
				Fn:    tr.fn,
				Event: TriggerEvent{TriggerID: tr.id, Reading: r, Region: tr.region},
			})
		}
	}
	visitDelta := db.triggerIdx.Visits() - visits0
	db.trigMu.RUnlock()

	// The db_insert stage ends here: storage and trigger matching are
	// done; what follows (trigger evaluation, hooks) is accounted to the
	// downstream stages.
	mInsertVisits.Add(uint64(visitDelta))
	db.syncVisitsGauge()
	mInsertUs.Observe(float64(time.Since(start).Microseconds()))
	mInserts.Add(uint64(len(prepared)))
	mTriggerMatches.Add(uint64(len(firings)))
	if len(rs) > 1 {
		mBatchInserts.Inc()
		mBatchRows.Observe(float64(len(rs)))
	}
	for i := range prepared {
		obs.SpanSince(prepared[i].Trace, "db_insert", start)
	}

	if len(firings) > 0 {
		if dispatch != nil {
			dispatch(firings)
		} else {
			for _, f := range firings {
				f.Fn(f.Event)
			}
		}
	}
	db.hookMu.RLock()
	hooks := db.hooks
	db.hookMu.RUnlock()
	for i := range prepared {
		for _, h := range hooks {
			h(prepared[i])
		}
	}
	if len(errs) > 0 {
		return len(prepared), &RejectedError{Indices: rejected, Errs: errs}
	}
	return len(prepared), nil
}

// ReadingEpoch returns the object's reading-table epoch — a counter
// bumped whenever the object's stored rows change in a way that can
// change query results. An unchanged epoch means a cached fusion
// result for the object is still derived from the current rows. The
// counter lives on the object's resident shard and migrates with the
// rows, strictly increasing across floor changes.
func (db *DB) ReadingEpoch(mobjectID string) uint64 {
	sh := db.residentShard(mobjectID)
	if sh == nil {
		return 0
	}
	sh.readMu.RLock()
	e := sh.table.Load().epochs[mobjectID]
	sh.readMu.RUnlock()
	return e
}

// resolveReading computes the reading's universe-frame MBR from its
// GLOB location and detection radius.
func (db *DB) resolveReading(r model.Reading, spec model.SensorSpec) (geom.Rect, error) {
	if r.Location.IsZero() {
		return geom.Rect{}, fmt.Errorf("%w: reading has no location", ErrBadGeometry)
	}
	if r.Location.IsCoordinate() {
		rect, err := db.ResolveGLOB(r.Location)
		if err != nil {
			return geom.Rect{}, err
		}
		radius := r.DetectionRadius
		if radius == 0 && spec.Resolution.Kind == model.ResolutionDistance {
			radius = spec.Resolution.Radius
		}
		return rect.Expand(radius), nil
	}
	return db.ResolveGLOB(r.Location)
}

// ReadingsFor returns the unexpired readings for a mobile object at
// time now, applying each sensor's TTL from the metadata table.
// Expired rows are pruned as a side effect. Pruning does not bump the
// object's reading epoch: the removed rows were already invisible to
// every TTL-filtered query, so cached results stay correct.
func (db *DB) ReadingsFor(mobjectID string, now time.Time) []model.Reading {
	specs := db.sensorView.Load().specs
	for {
		sh := db.residentShard(mobjectID)
		if sh == nil {
			return nil
		}
		// Fast path under the shared lock: concurrent locates for
		// different objects on the same floor must not serialize here.
		// Only when a row has actually expired is the exclusive lock
		// taken to prune. The residence re-check under the lock makes
		// the read atomic with placement: a migration cannot move rows
		// out of sh while any of its locks are held.
		sh.readMu.RLock()
		if db.residentShard(mobjectID) != sh {
			sh.readMu.RUnlock()
			continue
		}
		rows := sh.table.Load().rows[mobjectID]
		live := make([]model.Reading, 0, len(rows))
		stale := false
		for _, r := range rows {
			spec, ok := specs[r.SensorID]
			if !ok || r.Expired(now, spec.TTL) {
				stale = true
				continue
			}
			live = append(live, r)
		}
		sh.readMu.RUnlock()
		if !stale {
			return live
		}

		// Pruning mutates the table, so it runs inside a cut bracket
		// (taken before readMu per the lock order) — a concurrent
		// snapshot either excludes or includes the whole prune.
		db.beginBatch(sh)
		sh.readMu.Lock()
		if db.residentShard(mobjectID) != sh {
			sh.readMu.Unlock()
			db.endBatchClean(sh)
			continue
		}
		t := sh.mutableTable()
		// Recompute: the rows may have changed between the locks.
		rows = t.rows[mobjectID]
		live = live[:0]
		for _, r := range rows {
			spec, ok := specs[r.SensorID]
			if !ok {
				continue
			}
			if !r.Expired(now, spec.TTL) {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			delete(t.rows, mobjectID)
			delete(t.owned, mobjectID)
		} else {
			t.rows[mobjectID] = append([]model.Reading(nil), live...)
			t.owned[mobjectID] = true
		}
		// Pruning is where the conservative support rect snaps back to
		// exact: recompute it from the surviving rows.
		t.resetSupport(mobjectID, t.rows[mobjectID])
		sh.readMu.Unlock()
		db.endBatch(sh)
		return live
	}
}

// LatestPerSensor returns, for each sensor that has an unexpired
// reading for the object, only its newest one — the working set for
// fusion.
func (db *DB) LatestPerSensor(mobjectID string, now time.Time) []model.Reading {
	return latestPerSensor(db.ReadingsFor(mobjectID, now))
}

// latestPerSensor reduces TTL-filtered rows to the newest per sensor,
// sorted by sensor ID (shared by the live path and Snapshot).
func latestPerSensor(rows []model.Reading) []model.Reading {
	latest := make(map[string]model.Reading, len(rows))
	for _, r := range rows {
		if cur, ok := latest[r.SensorID]; !ok || r.Time.After(cur.Time) {
			latest[r.SensorID] = r
		}
	}
	out := make([]model.Reading, 0, len(latest))
	for _, r := range latest {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SensorID < out[j].SensorID })
	return out
}

// MobileObjects returns the IDs of all objects with stored readings,
// sorted.
func (db *DB) MobileObjects() []string {
	var out []string
	for _, sh := range db.allShards() {
		sh.readMu.RLock()
		for id := range sh.table.Load().rows {
			out = append(out, id)
		}
		sh.readMu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// ExpireReadings removes every reading for every object that has
// outlived its sensor's TTL at time now, and expires readings matching
// the filter immediately (used by the biometric logout flow, §6.3).
// Objects that lose a not-yet-expired row through the filter get their
// reading epoch bumped: the forced expiry changes query results, so
// cached fusion state for them must be invalidated. Each shard expires
// under its own lock, so floors clean up without cross-floor
// contention.
func (db *DB) ExpireReadings(now time.Time, match func(model.Reading) bool) {
	specs := db.sensorView.Load().specs
	type change struct {
		id     string
		live   []model.Reading
		forced bool
	}
	for _, sh := range db.allShards() {
		// Bracket each shard's sweep so a concurrent cut sees the whole
		// shard's expiry or none of it; a sweep that changes nothing
		// ends clean, keeping pooled snapshots valid.
		db.beginBatch(sh)
		sh.readMu.Lock()
		var changes []change
		for id, rows := range sh.table.Load().rows {
			var live []model.Reading
			forced := false
			for _, r := range rows {
				spec, ok := specs[r.SensorID]
				if !ok || r.Expired(now, spec.TTL) {
					continue
				}
				if match != nil && match(r) {
					forced = true
					continue
				}
				live = append(live, r)
			}
			if forced || len(live) != len(rows) {
				changes = append(changes, change{id: id, live: live, forced: forced})
			}
		}
		if len(changes) > 0 {
			t := sh.mutableTable()
			for _, c := range changes {
				if len(c.live) == 0 {
					delete(t.rows, c.id)
					delete(t.owned, c.id)
				} else {
					t.rows[c.id] = c.live
					t.owned[c.id] = true
				}
				t.resetSupport(c.id, c.live)
				if c.forced {
					t.epochs[c.id]++
				}
			}
			sh.writeEpoch.Add(1)
		}
		sh.readMu.Unlock()
		if len(changes) > 0 {
			db.endBatch(sh)
		} else {
			db.endBatchClean(sh)
		}
	}
}
