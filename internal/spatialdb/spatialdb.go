// Package spatialdb is MiddleWhere's spatial database (§5) — the
// in-process substitute for the PostGIS/PostgreSQL instance the paper
// deploys. It stores
//
//   - the physical-space object table (Table 1: ObjectIdentifier,
//     GlobPrefix, ObjectType, GeometryType, Points),
//   - the sensor-reading table (Table 2) with temporal information,
//   - the per-sensor metadata table (confidence and time-to-live,
//     §5.2), and
//   - location triggers (§5.3) evaluated on every reading insert.
//
// Geometry is indexed with an R-tree so containment/intersection
// queries and trigger matching stay sub-linear in table size, the role
// PostGIS's GiST indexes play in the paper's deployment. All methods
// are safe for concurrent use.
package spatialdb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"middlewhere/internal/coords"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
	"middlewhere/internal/rtree"
)

// Database metrics, cached once so the hot paths are pure atomics.
var (
	mInserts        = obs.Default().Counter("spatialdb_inserts_total")
	mInsertErrors   = obs.Default().Counter("spatialdb_insert_errors_total")
	mInsertUs       = obs.Default().Histogram("spatialdb_insert_us")
	mQueries        = obs.Default().Counter("spatialdb_queries_total")
	mQueryUs        = obs.Default().Histogram("spatialdb_query_us")
	mTriggerMatches = obs.Default().Counter("spatialdb_trigger_matches_total")
	mBatchInserts   = obs.Default().Counter("spatialdb_batch_inserts_total")
	mBatchRows      = obs.Default().Histogram("spatialdb_batch_rows")
	// mInsertVisits is approximate since the per-table lock split:
	// trigger matching runs under a shared lock, so concurrent searches
	// can cross-attribute Visits() deltas. The totals still converge.
	mInsertVisits = obs.Default().Counter("rtree_insert_visits_total")
	// mVisitsGauge mirrors the cumulative node visits of both trees
	// (object index + trigger index); refreshed after every insert and
	// query rather than delta-tracked, because concurrent RLock readers
	// would cross-attribute deltas.
	mVisitsGauge = obs.Default().Gauge("rtree_node_visits")
)

// syncVisitsGauge refreshes the cumulative R-tree visit gauge; safe to
// call without the database lock (tree visit counters are atomic).
func (db *DB) syncVisitsGauge() {
	mVisitsGauge.Set(float64(db.objIdx.Visits() + db.triggerIdx.Visits()))
}

// observeQuery records one spatial query's latency; used as
// `defer db.observeQuery(time.Now())`.
func (db *DB) observeQuery(start time.Time) {
	mQueries.Inc()
	mQueryUs.Observe(float64(time.Since(start).Microseconds()))
	db.syncVisitsGauge()
}

// Object is one row of the physical-space table (Table 1) plus the
// spatial properties of §5.1 (location, dimension, orientation and
// free-form attributes such as "power-outlets").
type Object struct {
	// GLOB names the object: GlobPrefix + ObjectIdentifier.
	GLOB glob.GLOB
	// Type is the semantic type: "Floor", "Room", "Corridor", "Door",
	// "Display", "Table", ...
	Type string
	// Kind is the geometry type (point, line, polygon).
	Kind glob.Kind
	// LocalPoints is the geometry in the coordinate frame of the
	// object's GlobPrefix, as stored in the Points column.
	LocalPoints []geom.Point
	// Bounds is the MBR of the geometry in the universe frame,
	// maintained by the database.
	Bounds geom.Rect
	// Polygon is the exact geometry in the universe frame (for
	// polygon objects); nil for points and lines.
	Polygon geom.Polygon
	// Properties holds free-form attributes used by property queries
	// ("power-outlets": "yes", "bluetooth": "high").
	Properties map[string]string
}

// ID returns the object's full GLOB string, the primary key of the
// object table.
func (o Object) ID() string { return o.GLOB.String() }

// Sentinel errors.
var (
	ErrNotFound      = errors.New("spatialdb: not found")
	ErrDuplicate     = errors.New("spatialdb: duplicate")
	ErrBadGeometry   = errors.New("spatialdb: bad geometry")
	ErrUnknownSensor = errors.New("spatialdb: unknown sensor")
	ErrBadTrigger    = errors.New("spatialdb: bad trigger")
)

// TriggerEvent is delivered to a trigger's callback when a matching
// sensor reading is inserted (§5.3).
type TriggerEvent struct {
	// TriggerID identifies the fired trigger.
	TriggerID string
	// Reading is the inserted reading that satisfied the spatial
	// condition.
	Reading model.Reading
	// Region is the trigger's region.
	Region geom.Rect
}

// TriggerFunc receives trigger events. It is called synchronously on
// the inserting goroutine; long-running work must be handed off by the
// callee (the Location Service hands events to its notifier).
type TriggerFunc func(TriggerEvent)

// trigger is a registered spatial trigger condition.
type trigger struct {
	id string
	// mobject filters on the observed object; empty matches any.
	mobject string
	region  geom.Rect
	fn      TriggerFunc
}

// maxReadingsPerObject bounds the stored rows per mobile object; the
// newest rows are kept. 64 comfortably covers every deployed sensor
// reporting at once with history to spare.
const maxReadingsPerObject = 64

// DB is the spatial database. Each table has its own lock so that
// concurrent locates (object + sensor reads) stop contending with
// ingest (reading writes). A goroutine that needs more than one lock
// MUST acquire them in the fixed order
//
//	sensorMu → objMu → readMu → trigMu
//
// (hookMu is independent and never held together with the others).
type DB struct {
	// Object table (Table 1) and its R-tree index. frames is immutable
	// after New; it lives here because symbolic GLOB resolution walks
	// objects and frames together. objGen counts structural changes
	// (insert/delete), bumped under the write lock; readers use it to
	// detect stale cached resolutions without holding objMu.
	objMu   sync.RWMutex
	frames  *coords.Tree
	objects map[string]*Object
	objIdx  *rtree.Tree
	objGen  atomic.Uint64

	// Sensor metadata table (§5.2). sensorGen counts registrations so
	// callers can memoize whole-table derivatives (the fusion
	// classifier) and revalidate with one atomic load.
	sensorMu  sync.RWMutex
	sensors   map[string]model.SensorSpec
	sensorGen atomic.Uint64

	// Reading table (Table 2): mobject ID -> readings, newest last.
	// epochs holds a per-object counter bumped whenever that object's
	// row set changes in a way that can change query results (insert,
	// forced expiry) — the precise invalidation key for fused-location
	// caches. Entries are never deleted, so an epoch observed once can
	// only grow.
	readMu   sync.RWMutex
	readings map[string][]model.Reading
	epochs   map[string]uint64

	// Location triggers (§5.3) and their R-tree index.
	trigMu     sync.RWMutex
	triggers   map[string]*trigger
	triggerIdx *rtree.Tree

	// hooks run after every successful reading insert (and after the
	// matching triggers), outside all table locks.
	hookMu sync.RWMutex
	hooks  []func(model.Reading)

	universe geom.Rect
}

// New creates a database over the given coordinate frame tree. The
// universe rectangle (the building's floor area, the paper's U) bounds
// all geometry and probability reasoning.
func New(frames *coords.Tree, universe geom.Rect) *DB {
	return &DB{
		frames:     frames,
		objects:    make(map[string]*Object),
		objIdx:     rtree.New(),
		readings:   make(map[string][]model.Reading),
		epochs:     make(map[string]uint64),
		sensors:    make(map[string]model.SensorSpec),
		triggers:   make(map[string]*trigger),
		triggerIdx: rtree.New(),
		universe:   universe,
	}
}

// Universe returns the universe rectangle.
func (db *DB) Universe() geom.Rect { return db.universe }

// Frames returns the coordinate frame tree the database resolves
// against.
func (db *DB) Frames() *coords.Tree { return db.frames }

// ---------------------------------------------------------------------------
// Object table

// InsertObject adds an object. Its geometry is resolved from the
// GlobPrefix frame into the universe frame.
func (db *DB) InsertObject(o Object) error {
	if o.GLOB.IsZero() {
		return fmt.Errorf("%w: empty GLOB", ErrBadGeometry)
	}
	if len(o.LocalPoints) == 0 {
		return fmt.Errorf("%w: object %s has no points", ErrBadGeometry, o.ID())
	}
	db.objMu.Lock()
	defer db.objMu.Unlock()
	id := o.ID()
	if _, ok := db.objects[id]; ok {
		return fmt.Errorf("%w: object %s", ErrDuplicate, id)
	}
	resolved, poly, err := db.resolveLocked(o.GLOB.Prefix(), o.LocalPoints)
	if err != nil {
		return fmt.Errorf("insert object %s: %w", id, err)
	}
	stored := o
	stored.LocalPoints = append([]geom.Point(nil), o.LocalPoints...)
	stored.Bounds = resolved
	if o.Kind == glob.KindPolygon {
		stored.Polygon = poly
	}
	if o.Properties != nil {
		props := make(map[string]string, len(o.Properties))
		for k, v := range o.Properties {
			props[k] = v
		}
		stored.Properties = props
	}
	db.objects[id] = &stored
	db.objIdx.Insert(stored.Bounds, id)
	db.objGen.Add(1)
	return nil
}

// resolveLocked converts local-frame points into the universe frame.
// Caller holds at least the objMu read lock.
func (db *DB) resolveLocked(prefix glob.GLOB, pts []geom.Point) (geom.Rect, geom.Polygon, error) {
	frame, ok := db.frames.FrameForGLOBPath(prefix.Path)
	if !ok {
		return geom.Rect{}, nil, fmt.Errorf("no coordinate frame for prefix %q", prefix.String())
	}
	root, err := db.frames.Root(frame)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	poly, err := db.frames.ConvertPolygon(geom.Polygon(pts), frame, root)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	return poly.Bounds(), poly, nil
}

// GetObject returns an object by its GLOB string.
func (db *DB) GetObject(id string) (Object, error) {
	db.objMu.RLock()
	defer db.objMu.RUnlock()
	o, ok := db.objects[id]
	if !ok {
		return Object{}, fmt.Errorf("%w: object %s", ErrNotFound, id)
	}
	return o.clone(), nil
}

// DeleteObject removes an object.
func (db *DB) DeleteObject(id string) error {
	db.objMu.Lock()
	defer db.objMu.Unlock()
	o, ok := db.objects[id]
	if !ok {
		return fmt.Errorf("%w: object %s", ErrNotFound, id)
	}
	db.objIdx.Delete(o.Bounds, id)
	delete(db.objects, id)
	db.objGen.Add(1)
	return nil
}

// Objects returns all objects sorted by ID.
func (db *DB) Objects() []Object {
	db.objMu.RLock()
	defer db.objMu.RUnlock()
	out := make([]Object, 0, len(db.objects))
	for _, o := range db.objects {
		out = append(out, o.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

func (o *Object) clone() Object {
	out := *o
	out.LocalPoints = append([]geom.Point(nil), o.LocalPoints...)
	out.Polygon = append(geom.Polygon(nil), o.Polygon...)
	if o.Properties != nil {
		props := make(map[string]string, len(o.Properties))
		for k, v := range o.Properties {
			props[k] = v
		}
		out.Properties = props
	}
	return out
}

// ObjectFilter narrows object queries.
type ObjectFilter struct {
	// Type restricts to a semantic type; empty matches all.
	Type string
	// Prefix restricts to objects under a GLOB prefix; zero matches
	// all.
	Prefix glob.GLOB
	// Properties lists attributes the object must carry with the given
	// values.
	Properties map[string]string
}

func (f ObjectFilter) match(o *Object) bool {
	if f.Type != "" && !strings.EqualFold(f.Type, o.Type) {
		return false
	}
	if !f.Prefix.IsZero() && !o.GLOB.HasPrefix(f.Prefix) {
		return false
	}
	for k, v := range f.Properties {
		if o.Properties[k] != v {
			return false
		}
	}
	return true
}

// IntersectingObjects returns objects whose universe-frame MBR
// intersects r, filtered, sorted by ID.
func (db *DB) IntersectingObjects(r geom.Rect, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	db.objMu.RLock()
	defer db.objMu.RUnlock()
	var out []Object
	for _, it := range db.objIdx.SearchIntersect(r) {
		o := db.objects[it.ID]
		if o != nil && f.match(o) {
			out = append(out, o.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ContainedObjects returns objects fully inside r, filtered, sorted by
// ID.
func (db *DB) ContainedObjects(r geom.Rect, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	db.objMu.RLock()
	defer db.objMu.RUnlock()
	var out []Object
	for _, it := range db.objIdx.SearchContained(r) {
		o := db.objects[it.ID]
		if o != nil && f.match(o) {
			out = append(out, o.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ObjectsAt returns the objects whose MBR contains the point (deepest
// GLOB first — the room before the floor).
func (db *DB) ObjectsAt(p geom.Point, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	db.objMu.RLock()
	defer db.objMu.RUnlock()
	var out []Object
	for _, it := range db.objIdx.SearchContaining(p) {
		o := db.objects[it.ID]
		if o != nil && f.match(o) {
			out = append(out, o.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if d1, d2 := out[i].GLOB.Depth(), out[j].GLOB.Depth(); d1 != d2 {
			return d1 > d2
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

// Nearest answers property queries such as "the nearest region with
// power outlets and high Bluetooth signal" (§5.1): the k objects
// passing the filter closest to p.
func (db *DB) Nearest(p geom.Point, k int, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	db.objMu.RLock()
	defer db.objMu.RUnlock()
	// Over-fetch from the index and filter; property predicates cannot
	// be pushed into the R-tree.
	var out []Object
	fetch := k * 4
	if fetch < 16 {
		fetch = 16
	}
	for len(out) < k {
		items := db.objIdx.Nearest(p, fetch)
		out = out[:0]
		for _, it := range items {
			o := db.objects[it.ID]
			if o != nil && f.match(o) {
				out = append(out, o.clone())
				if len(out) == k {
					break
				}
			}
		}
		if len(items) < fetch {
			break // exhausted the table
		}
		fetch *= 2
	}
	return out
}

// ResolveGLOB converts any GLOB — symbolic or coordinate — to its MBR
// in the universe frame. Symbolic GLOBs are looked up in the object
// table; coordinate GLOBs are transformed from their prefix frame.
func (db *DB) ResolveGLOB(g glob.GLOB) (geom.Rect, error) {
	db.objMu.RLock()
	defer db.objMu.RUnlock()
	return db.resolveGLOBLocked(g)
}

// ObjectGeneration returns a counter bumped on every object-table
// change (insert or delete). A cached symbolic resolution is still
// valid while the generation it was computed under is unchanged.
func (db *DB) ObjectGeneration() uint64 { return db.objGen.Load() }

func (db *DB) resolveGLOBLocked(g glob.GLOB) (geom.Rect, error) {
	if g.IsZero() {
		return geom.Rect{}, fmt.Errorf("%w: empty GLOB", ErrBadGeometry)
	}
	if g.IsCoordinate() {
		r, _, err := db.resolveLocked(g.Prefix(), g.PlanarPoints())
		return r, err
	}
	if o, ok := db.objects[g.String()]; ok {
		return o.Bounds, nil
	}
	return geom.Rect{}, fmt.Errorf("%w: symbolic location %s", ErrNotFound, g.String())
}

// ---------------------------------------------------------------------------
// Sensor tables

// RegisterSensor records a sensor instance and its calibrated spec in
// the sensor metadata table (§5.2).
func (db *DB) RegisterSensor(sensorID string, spec model.SensorSpec) error {
	if sensorID == "" {
		return fmt.Errorf("%w: empty sensor id", ErrUnknownSensor)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	db.sensorMu.Lock()
	defer db.sensorMu.Unlock()
	db.sensors[sensorID] = spec
	db.sensorGen.Add(1)
	return nil
}

// SensorSpec returns the spec registered for a sensor.
func (db *DB) SensorSpec(sensorID string) (model.SensorSpec, error) {
	db.sensorMu.RLock()
	defer db.sensorMu.RUnlock()
	spec, ok := db.sensors[sensorID]
	if !ok {
		return model.SensorSpec{}, fmt.Errorf("%w: %s", ErrUnknownSensor, sensorID)
	}
	return spec, nil
}

// Sensors returns the registered sensor IDs, sorted.
func (db *DB) Sensors() []string {
	db.sensorMu.RLock()
	defer db.sensorMu.RUnlock()
	out := make([]string, 0, len(db.sensors))
	for id := range db.sensors {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SensorGeneration returns a counter bumped on every sensor
// registration. Callers that derive state from the whole sensor table
// (the fusion classifier, per-sensor spec lookups on the query path)
// memoize against it and refresh only when it moves.
func (db *DB) SensorGeneration() uint64 { return db.sensorGen.Load() }

// SensorSnapshot returns a copy of the sensor metadata table together
// with the generation it was taken at. The copy is the caller's to
// keep; the generation lets it revalidate with one atomic load instead
// of a lock per spec lookup.
func (db *DB) SensorSnapshot() (map[string]model.SensorSpec, uint64) {
	db.sensorMu.RLock()
	defer db.sensorMu.RUnlock()
	out := make(map[string]model.SensorSpec, len(db.sensors))
	for id, spec := range db.sensors {
		out[id] = spec
	}
	return out, db.sensorGen.Load()
}

// TriggerFiring pairs a matched trigger callback with the event it
// should receive. InsertReadings hands the batch's firings to a
// FiringDispatcher so the caller can fan evaluation out.
type TriggerFiring struct {
	Fn    TriggerFunc
	Event TriggerEvent
}

// FiringDispatcher runs a batch's trigger firings. It is called at
// most once per InsertReadings call, after the rows are stored and all
// table locks are released, and must run every firing before
// returning. Firings for the same mobile object appear in reading
// order; a dispatcher may parallelize across objects but should
// preserve that per-object order (entry/exit edge detection depends on
// it).
type FiringDispatcher func([]TriggerFiring)

// RejectedError reports the readings of an insert that failed
// validation (unknown sensor, missing mobject id, unresolvable
// location). It covers only the rejected readings: the rest of the
// batch was stored, so re-submitting the whole batch would duplicate
// the stored rows. Callers that retry (the resilient adapter sink, a
// remote client) must retry only the listed indices.
type RejectedError struct {
	// Indices are the rejected readings' positions in the submitted
	// slice, ascending.
	Indices []int
	// Errs holds the per-reading failures, parallel to Indices.
	Errs []error
}

func (e *RejectedError) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	return fmt.Sprintf("spatialdb: %d readings rejected: %v", len(e.Errs), errors.Join(e.Errs...))
}

// Unwrap exposes the per-reading failures to errors.Is / errors.As.
func (e *RejectedError) Unwrap() []error { return e.Errs }

// InsertReading stores a sensor reading (resolving its location to a
// universe-frame MBR if the adapter has not already) and fires any
// matching triggers synchronously. The sensor must be registered.
func (db *DB) InsertReading(r model.Reading) error {
	_, err := db.InsertReadings([]model.Reading{r}, nil)
	return err
}

// InsertReadings stores a slice of readings with one lock acquisition
// per table instead of one per reading, amortizing the hot-path cost
// for batched adapters. Readings that fail validation are skipped;
// the rest are stored. It returns the number stored and, when any
// reading was skipped, a *RejectedError naming the skipped indices —
// never retry the whole batch on that error, the other rows are
// already in the table.
//
// Trigger firings for the whole batch are collected and then run via
// dispatch; a nil dispatch runs them serially in insertion order,
// which makes InsertReadings(rs, nil) observably equivalent to
// len(rs) InsertReading calls. Insert hooks run last, per stored
// reading in order, as in the single-insert path.
func (db *DB) InsertReadings(rs []model.Reading, dispatch FiringDispatcher) (int, error) {
	if len(rs) == 0 {
		return 0, nil
	}
	start := time.Now()

	// Phase 1 — validate and resolve regions under the sensor and
	// object read locks (lock order: sensorMu → objMu).
	prepared := make([]model.Reading, 0, len(rs))
	var errs []error
	var rejected []int
	db.sensorMu.RLock()
	db.objMu.RLock()
	for i, r := range rs {
		if r.MObjectID == "" {
			mInsertErrors.Inc()
			rejected = append(rejected, i)
			errs = append(errs, fmt.Errorf("spatialdb: reading without mobject id"))
			continue
		}
		spec, ok := db.sensors[r.SensorID]
		if !ok {
			mInsertErrors.Inc()
			rejected = append(rejected, i)
			errs = append(errs, fmt.Errorf("%w: %s", ErrUnknownSensor, r.SensorID))
			continue
		}
		if r.SensorType == "" {
			r.SensorType = spec.Type
		}
		if !r.Region.Valid() || r.Region.Area() == 0 {
			rect, err := db.resolveReadingLocked(r, spec)
			if err != nil {
				mInsertErrors.Inc()
				rejected = append(rejected, i)
				errs = append(errs, fmt.Errorf("insert reading from %s: %w", r.SensorID, err))
				continue
			}
			r.Region = rect
		}
		prepared = append(prepared, r)
	}
	db.objMu.RUnlock()
	db.sensorMu.RUnlock()

	// Phase 2 — store every row under one write lock: movement
	// detection, append, bound, and the per-object epoch bump that
	// invalidates fused-location caches.
	db.readMu.Lock()
	for i := range prepared {
		r := &prepared[i]
		// Movement detection: compare with the previous reading from
		// the same sensor for the same object.
		prev := db.readings[r.MObjectID]
		for j := len(prev) - 1; j >= 0; j-- {
			if prev[j].SensorID == r.SensorID {
				if !prev[j].Region.Eq(r.Region) {
					r.Moving = true
				}
				break
			}
		}
		rows := append(db.readings[r.MObjectID], *r)
		// Bound per-object storage: long-TTL sensors (desktop sessions,
		// biometric long readings) must not accumulate without limit.
		// The newest rows win; fusion only consumes the latest row per
		// sensor anyway.
		if len(rows) > maxReadingsPerObject {
			rows = append(rows[:0], rows[len(rows)-maxReadingsPerObject:]...)
		}
		db.readings[r.MObjectID] = rows
		db.epochs[r.MObjectID]++
	}
	db.readMu.Unlock()

	// Phase 3 — match triggers for the whole batch under the shared
	// trigger lock; firing happens after release.
	visits0 := db.triggerIdx.Visits()
	var firings []TriggerFiring
	db.trigMu.RLock()
	for _, r := range prepared {
		for _, it := range db.triggerIdx.SearchIntersect(r.Region) {
			tr := db.triggers[it.ID]
			if tr == nil {
				continue
			}
			if tr.mobject != "" && tr.mobject != r.MObjectID {
				continue
			}
			firings = append(firings, TriggerFiring{
				Fn:    tr.fn,
				Event: TriggerEvent{TriggerID: tr.id, Reading: r, Region: tr.region},
			})
		}
	}
	visitDelta := db.triggerIdx.Visits() - visits0
	db.trigMu.RUnlock()

	// The db_insert stage ends here: storage and trigger matching are
	// done; what follows (trigger evaluation, hooks) is accounted to the
	// downstream stages.
	mInsertVisits.Add(uint64(visitDelta))
	db.syncVisitsGauge()
	mInsertUs.Observe(float64(time.Since(start).Microseconds()))
	mInserts.Add(uint64(len(prepared)))
	mTriggerMatches.Add(uint64(len(firings)))
	if len(rs) > 1 {
		mBatchInserts.Inc()
		mBatchRows.Observe(float64(len(rs)))
	}
	for i := range prepared {
		obs.SpanSince(prepared[i].Trace, "db_insert", start)
	}

	if len(firings) > 0 {
		if dispatch != nil {
			dispatch(firings)
		} else {
			for _, f := range firings {
				f.Fn(f.Event)
			}
		}
	}
	db.hookMu.RLock()
	hooks := db.hooks
	db.hookMu.RUnlock()
	for i := range prepared {
		for _, h := range hooks {
			h(prepared[i])
		}
	}
	if len(errs) > 0 {
		return len(prepared), &RejectedError{Indices: rejected, Errs: errs}
	}
	return len(prepared), nil
}

// ReadingEpoch returns the object's reading-table epoch — a counter
// bumped whenever the object's stored rows change in a way that can
// change query results. An unchanged epoch means a cached fusion
// result for the object is still derived from the current rows.
func (db *DB) ReadingEpoch(mobjectID string) uint64 {
	db.readMu.RLock()
	defer db.readMu.RUnlock()
	return db.epochs[mobjectID]
}

// AddInsertHook registers a callback invoked after every successful
// reading insert, once the matching triggers have fired. Hooks run on
// the inserting goroutine outside the table locks. The Location
// Service uses one to observe readings that fall outside any trigger
// region (exit detection for entry/exit subscriptions).
func (db *DB) AddInsertHook(fn func(model.Reading)) {
	if fn == nil {
		return
	}
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.hooks = append(db.hooks, fn)
}

// resolveReadingLocked computes the reading's universe-frame MBR from
// its GLOB location and detection radius.
func (db *DB) resolveReadingLocked(r model.Reading, spec model.SensorSpec) (geom.Rect, error) {
	if r.Location.IsZero() {
		return geom.Rect{}, fmt.Errorf("%w: reading has no location", ErrBadGeometry)
	}
	if r.Location.IsCoordinate() {
		rect, err := db.resolveGLOBLocked(r.Location)
		if err != nil {
			return geom.Rect{}, err
		}
		radius := r.DetectionRadius
		if radius == 0 && spec.Resolution.Kind == model.ResolutionDistance {
			radius = spec.Resolution.Radius
		}
		return rect.Expand(radius), nil
	}
	return db.resolveGLOBLocked(r.Location)
}

// ReadingsFor returns the unexpired readings for a mobile object at
// time now, applying each sensor's TTL from the metadata table.
// Expired rows are pruned as a side effect. Pruning does not bump the
// object's reading epoch: the removed rows were already invisible to
// every TTL-filtered query, so cached results stay correct.
func (db *DB) ReadingsFor(mobjectID string, now time.Time) []model.Reading {
	db.sensorMu.RLock()
	defer db.sensorMu.RUnlock()
	// Fast path under the shared lock: concurrent locates for
	// different objects must not serialize here. Only when a row has
	// actually expired is the exclusive lock taken to prune.
	db.readMu.RLock()
	rows := db.readings[mobjectID]
	live := make([]model.Reading, 0, len(rows))
	stale := false
	for _, r := range rows {
		spec, ok := db.sensors[r.SensorID]
		if !ok || r.Expired(now, spec.TTL) {
			stale = true
			continue
		}
		live = append(live, r)
	}
	db.readMu.RUnlock()
	if !stale {
		return live
	}

	db.readMu.Lock()
	defer db.readMu.Unlock()
	// Recompute: the rows may have changed between the locks.
	rows = db.readings[mobjectID]
	live = live[:0]
	for _, r := range rows {
		spec, ok := db.sensors[r.SensorID]
		if !ok {
			continue
		}
		if !r.Expired(now, spec.TTL) {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		delete(db.readings, mobjectID)
	} else {
		db.readings[mobjectID] = append([]model.Reading(nil), live...)
	}
	return live
}

// LatestPerSensor returns, for each sensor that has an unexpired
// reading for the object, only its newest one — the working set for
// fusion.
func (db *DB) LatestPerSensor(mobjectID string, now time.Time) []model.Reading {
	rows := db.ReadingsFor(mobjectID, now)
	latest := make(map[string]model.Reading, len(rows))
	for _, r := range rows {
		if cur, ok := latest[r.SensorID]; !ok || r.Time.After(cur.Time) {
			latest[r.SensorID] = r
		}
	}
	out := make([]model.Reading, 0, len(latest))
	for _, r := range latest {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SensorID < out[j].SensorID })
	return out
}

// MobileObjects returns the IDs of all objects with stored readings,
// sorted.
func (db *DB) MobileObjects() []string {
	db.readMu.RLock()
	defer db.readMu.RUnlock()
	out := make([]string, 0, len(db.readings))
	for id := range db.readings {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ExpireReadings removes every reading for every object that has
// outlived its sensor's TTL at time now, and expires readings matching
// the filter immediately (used by the biometric logout flow, §6.3).
// Objects that lose a not-yet-expired row through the filter get their
// reading epoch bumped: the forced expiry changes query results, so
// cached fusion state for them must be invalidated.
func (db *DB) ExpireReadings(now time.Time, match func(model.Reading) bool) {
	db.sensorMu.RLock()
	defer db.sensorMu.RUnlock()
	db.readMu.Lock()
	defer db.readMu.Unlock()
	for id, rows := range db.readings {
		var live []model.Reading
		forced := false
		for _, r := range rows {
			spec, ok := db.sensors[r.SensorID]
			if !ok || r.Expired(now, spec.TTL) {
				continue
			}
			if match != nil && match(r) {
				forced = true
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			delete(db.readings, id)
		} else {
			db.readings[id] = live
		}
		if forced {
			db.epochs[id]++
		}
	}
}

// ---------------------------------------------------------------------------
// Triggers

// AddTrigger registers a spatial trigger: fn fires whenever a reading
// for mobjectID (any object if empty) intersects region. The trigger
// region is indexed so inserts stay sub-linear in the number of
// triggers.
func (db *DB) AddTrigger(id, mobjectID string, region geom.Rect, fn TriggerFunc) error {
	if id == "" || fn == nil {
		return fmt.Errorf("%w: need id and callback", ErrBadTrigger)
	}
	if !region.Valid() || region.Area() <= 0 {
		return fmt.Errorf("%w: degenerate region %v", ErrBadTrigger, region)
	}
	db.trigMu.Lock()
	defer db.trigMu.Unlock()
	if _, ok := db.triggers[id]; ok {
		return fmt.Errorf("%w: trigger %s", ErrDuplicate, id)
	}
	tr := &trigger{id: id, mobject: mobjectID, region: region, fn: fn}
	db.triggers[id] = tr
	db.triggerIdx.Insert(region, id)
	return nil
}

// RemoveTrigger unregisters a trigger.
func (db *DB) RemoveTrigger(id string) error {
	db.trigMu.Lock()
	defer db.trigMu.Unlock()
	tr, ok := db.triggers[id]
	if !ok {
		return fmt.Errorf("%w: trigger %s", ErrNotFound, id)
	}
	db.triggerIdx.Delete(tr.region, id)
	delete(db.triggers, id)
	return nil
}

// TriggerCount returns the number of registered triggers.
func (db *DB) TriggerCount() int {
	db.trigMu.RLock()
	defer db.trigMu.RUnlock()
	return len(db.triggers)
}
