// Package spatialdb is MiddleWhere's spatial database (§5) — the
// in-process substitute for the PostGIS/PostgreSQL instance the paper
// deploys. It stores
//
//   - the physical-space object table (Table 1: ObjectIdentifier,
//     GlobPrefix, ObjectType, GeometryType, Points),
//   - the sensor-reading table (Table 2) with temporal information,
//   - the per-sensor metadata table (confidence and time-to-live,
//     §5.2), and
//   - location triggers (§5.3) evaluated on every reading insert.
//
// Geometry is indexed with an R-tree so containment/intersection
// queries and trigger matching stay sub-linear in table size, the role
// PostGIS's GiST indexes play in the paper's deployment. All methods
// are safe for concurrent use.
package spatialdb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"middlewhere/internal/coords"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
	"middlewhere/internal/rtree"
)

// Database metrics, cached once so the hot paths are pure atomics.
var (
	mInserts        = obs.Default().Counter("spatialdb_inserts_total")
	mInsertErrors   = obs.Default().Counter("spatialdb_insert_errors_total")
	mInsertUs       = obs.Default().Histogram("spatialdb_insert_us")
	mQueries        = obs.Default().Counter("spatialdb_queries_total")
	mQueryUs        = obs.Default().Histogram("spatialdb_query_us")
	mTriggerMatches = obs.Default().Counter("spatialdb_trigger_matches_total")
	// mInsertVisits is exact: the insert path holds the exclusive lock,
	// so its before/after Visits() delta cannot interleave with readers.
	mInsertVisits = obs.Default().Counter("rtree_insert_visits_total")
	// mVisitsGauge mirrors the cumulative node visits of both trees
	// (object index + trigger index); refreshed after every insert and
	// query rather than delta-tracked, because concurrent RLock readers
	// would cross-attribute deltas.
	mVisitsGauge = obs.Default().Gauge("rtree_node_visits")
)

// syncVisitsGauge refreshes the cumulative R-tree visit gauge; safe to
// call without the database lock (tree visit counters are atomic).
func (db *DB) syncVisitsGauge() {
	mVisitsGauge.Set(float64(db.objIdx.Visits() + db.triggerIdx.Visits()))
}

// observeQuery records one spatial query's latency; used as
// `defer db.observeQuery(time.Now())`.
func (db *DB) observeQuery(start time.Time) {
	mQueries.Inc()
	mQueryUs.Observe(float64(time.Since(start).Microseconds()))
	db.syncVisitsGauge()
}

// Object is one row of the physical-space table (Table 1) plus the
// spatial properties of §5.1 (location, dimension, orientation and
// free-form attributes such as "power-outlets").
type Object struct {
	// GLOB names the object: GlobPrefix + ObjectIdentifier.
	GLOB glob.GLOB
	// Type is the semantic type: "Floor", "Room", "Corridor", "Door",
	// "Display", "Table", ...
	Type string
	// Kind is the geometry type (point, line, polygon).
	Kind glob.Kind
	// LocalPoints is the geometry in the coordinate frame of the
	// object's GlobPrefix, as stored in the Points column.
	LocalPoints []geom.Point
	// Bounds is the MBR of the geometry in the universe frame,
	// maintained by the database.
	Bounds geom.Rect
	// Polygon is the exact geometry in the universe frame (for
	// polygon objects); nil for points and lines.
	Polygon geom.Polygon
	// Properties holds free-form attributes used by property queries
	// ("power-outlets": "yes", "bluetooth": "high").
	Properties map[string]string
}

// ID returns the object's full GLOB string, the primary key of the
// object table.
func (o Object) ID() string { return o.GLOB.String() }

// Sentinel errors.
var (
	ErrNotFound      = errors.New("spatialdb: not found")
	ErrDuplicate     = errors.New("spatialdb: duplicate")
	ErrBadGeometry   = errors.New("spatialdb: bad geometry")
	ErrUnknownSensor = errors.New("spatialdb: unknown sensor")
	ErrBadTrigger    = errors.New("spatialdb: bad trigger")
)

// TriggerEvent is delivered to a trigger's callback when a matching
// sensor reading is inserted (§5.3).
type TriggerEvent struct {
	// TriggerID identifies the fired trigger.
	TriggerID string
	// Reading is the inserted reading that satisfied the spatial
	// condition.
	Reading model.Reading
	// Region is the trigger's region.
	Region geom.Rect
}

// TriggerFunc receives trigger events. It is called synchronously on
// the inserting goroutine; long-running work must be handed off by the
// callee (the Location Service hands events to its notifier).
type TriggerFunc func(TriggerEvent)

// trigger is a registered spatial trigger condition.
type trigger struct {
	id string
	// mobject filters on the observed object; empty matches any.
	mobject string
	region  geom.Rect
	fn      TriggerFunc
}

// maxReadingsPerObject bounds the stored rows per mobile object; the
// newest rows are kept. 64 comfortably covers every deployed sensor
// reporting at once with history to spare.
const maxReadingsPerObject = 64

// DB is the spatial database. Create with New.
type DB struct {
	mu sync.RWMutex

	frames  *coords.Tree
	objects map[string]*Object
	objIdx  *rtree.Tree

	// readings: mobject ID -> readings, newest last.
	readings map[string][]model.Reading
	// sensors: sensor ID -> spec (the §5.2 sensor table).
	sensors map[string]model.SensorSpec

	triggers   map[string]*trigger
	triggerIdx *rtree.Tree

	// hooks run after every successful reading insert (and after the
	// matching triggers), outside the database lock.
	hooks []func(model.Reading)

	universe geom.Rect
}

// New creates a database over the given coordinate frame tree. The
// universe rectangle (the building's floor area, the paper's U) bounds
// all geometry and probability reasoning.
func New(frames *coords.Tree, universe geom.Rect) *DB {
	return &DB{
		frames:     frames,
		objects:    make(map[string]*Object),
		objIdx:     rtree.New(),
		readings:   make(map[string][]model.Reading),
		sensors:    make(map[string]model.SensorSpec),
		triggers:   make(map[string]*trigger),
		triggerIdx: rtree.New(),
		universe:   universe,
	}
}

// Universe returns the universe rectangle.
func (db *DB) Universe() geom.Rect { return db.universe }

// Frames returns the coordinate frame tree the database resolves
// against.
func (db *DB) Frames() *coords.Tree { return db.frames }

// ---------------------------------------------------------------------------
// Object table

// InsertObject adds an object. Its geometry is resolved from the
// GlobPrefix frame into the universe frame.
func (db *DB) InsertObject(o Object) error {
	if o.GLOB.IsZero() {
		return fmt.Errorf("%w: empty GLOB", ErrBadGeometry)
	}
	if len(o.LocalPoints) == 0 {
		return fmt.Errorf("%w: object %s has no points", ErrBadGeometry, o.ID())
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	id := o.ID()
	if _, ok := db.objects[id]; ok {
		return fmt.Errorf("%w: object %s", ErrDuplicate, id)
	}
	resolved, poly, err := db.resolveLocked(o.GLOB.Prefix(), o.LocalPoints)
	if err != nil {
		return fmt.Errorf("insert object %s: %w", id, err)
	}
	stored := o
	stored.LocalPoints = append([]geom.Point(nil), o.LocalPoints...)
	stored.Bounds = resolved
	if o.Kind == glob.KindPolygon {
		stored.Polygon = poly
	}
	if o.Properties != nil {
		props := make(map[string]string, len(o.Properties))
		for k, v := range o.Properties {
			props[k] = v
		}
		stored.Properties = props
	}
	db.objects[id] = &stored
	db.objIdx.Insert(stored.Bounds, id)
	return nil
}

// resolveLocked converts local-frame points into the universe frame.
// Caller holds at least the read lock.
func (db *DB) resolveLocked(prefix glob.GLOB, pts []geom.Point) (geom.Rect, geom.Polygon, error) {
	frame, ok := db.frames.FrameForGLOBPath(prefix.Path)
	if !ok {
		return geom.Rect{}, nil, fmt.Errorf("no coordinate frame for prefix %q", prefix.String())
	}
	root, err := db.frames.Root(frame)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	poly, err := db.frames.ConvertPolygon(geom.Polygon(pts), frame, root)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	return poly.Bounds(), poly, nil
}

// GetObject returns an object by its GLOB string.
func (db *DB) GetObject(id string) (Object, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.objects[id]
	if !ok {
		return Object{}, fmt.Errorf("%w: object %s", ErrNotFound, id)
	}
	return o.clone(), nil
}

// DeleteObject removes an object.
func (db *DB) DeleteObject(id string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	o, ok := db.objects[id]
	if !ok {
		return fmt.Errorf("%w: object %s", ErrNotFound, id)
	}
	db.objIdx.Delete(o.Bounds, id)
	delete(db.objects, id)
	return nil
}

// Objects returns all objects sorted by ID.
func (db *DB) Objects() []Object {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Object, 0, len(db.objects))
	for _, o := range db.objects {
		out = append(out, o.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

func (o *Object) clone() Object {
	out := *o
	out.LocalPoints = append([]geom.Point(nil), o.LocalPoints...)
	out.Polygon = append(geom.Polygon(nil), o.Polygon...)
	if o.Properties != nil {
		props := make(map[string]string, len(o.Properties))
		for k, v := range o.Properties {
			props[k] = v
		}
		out.Properties = props
	}
	return out
}

// ObjectFilter narrows object queries.
type ObjectFilter struct {
	// Type restricts to a semantic type; empty matches all.
	Type string
	// Prefix restricts to objects under a GLOB prefix; zero matches
	// all.
	Prefix glob.GLOB
	// Properties lists attributes the object must carry with the given
	// values.
	Properties map[string]string
}

func (f ObjectFilter) match(o *Object) bool {
	if f.Type != "" && !strings.EqualFold(f.Type, o.Type) {
		return false
	}
	if !f.Prefix.IsZero() && !o.GLOB.HasPrefix(f.Prefix) {
		return false
	}
	for k, v := range f.Properties {
		if o.Properties[k] != v {
			return false
		}
	}
	return true
}

// IntersectingObjects returns objects whose universe-frame MBR
// intersects r, filtered, sorted by ID.
func (db *DB) IntersectingObjects(r geom.Rect, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Object
	for _, it := range db.objIdx.SearchIntersect(r) {
		o := db.objects[it.ID]
		if o != nil && f.match(o) {
			out = append(out, o.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ContainedObjects returns objects fully inside r, filtered, sorted by
// ID.
func (db *DB) ContainedObjects(r geom.Rect, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Object
	for _, it := range db.objIdx.SearchContained(r) {
		o := db.objects[it.ID]
		if o != nil && f.match(o) {
			out = append(out, o.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ObjectsAt returns the objects whose MBR contains the point (deepest
// GLOB first — the room before the floor).
func (db *DB) ObjectsAt(p geom.Point, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Object
	for _, it := range db.objIdx.SearchContaining(p) {
		o := db.objects[it.ID]
		if o != nil && f.match(o) {
			out = append(out, o.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if d1, d2 := out[i].GLOB.Depth(), out[j].GLOB.Depth(); d1 != d2 {
			return d1 > d2
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

// Nearest answers property queries such as "the nearest region with
// power outlets and high Bluetooth signal" (§5.1): the k objects
// passing the filter closest to p.
func (db *DB) Nearest(p geom.Point, k int, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	db.mu.RLock()
	defer db.mu.RUnlock()
	// Over-fetch from the index and filter; property predicates cannot
	// be pushed into the R-tree.
	var out []Object
	fetch := k * 4
	if fetch < 16 {
		fetch = 16
	}
	for len(out) < k {
		items := db.objIdx.Nearest(p, fetch)
		out = out[:0]
		for _, it := range items {
			o := db.objects[it.ID]
			if o != nil && f.match(o) {
				out = append(out, o.clone())
				if len(out) == k {
					break
				}
			}
		}
		if len(items) < fetch {
			break // exhausted the table
		}
		fetch *= 2
	}
	return out
}

// ResolveGLOB converts any GLOB — symbolic or coordinate — to its MBR
// in the universe frame. Symbolic GLOBs are looked up in the object
// table; coordinate GLOBs are transformed from their prefix frame.
func (db *DB) ResolveGLOB(g glob.GLOB) (geom.Rect, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.resolveGLOBLocked(g)
}

func (db *DB) resolveGLOBLocked(g glob.GLOB) (geom.Rect, error) {
	if g.IsZero() {
		return geom.Rect{}, fmt.Errorf("%w: empty GLOB", ErrBadGeometry)
	}
	if g.IsCoordinate() {
		r, _, err := db.resolveLocked(g.Prefix(), g.PlanarPoints())
		return r, err
	}
	if o, ok := db.objects[g.String()]; ok {
		return o.Bounds, nil
	}
	return geom.Rect{}, fmt.Errorf("%w: symbolic location %s", ErrNotFound, g.String())
}

// ---------------------------------------------------------------------------
// Sensor tables

// RegisterSensor records a sensor instance and its calibrated spec in
// the sensor metadata table (§5.2).
func (db *DB) RegisterSensor(sensorID string, spec model.SensorSpec) error {
	if sensorID == "" {
		return fmt.Errorf("%w: empty sensor id", ErrUnknownSensor)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sensors[sensorID] = spec
	return nil
}

// SensorSpec returns the spec registered for a sensor.
func (db *DB) SensorSpec(sensorID string) (model.SensorSpec, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	spec, ok := db.sensors[sensorID]
	if !ok {
		return model.SensorSpec{}, fmt.Errorf("%w: %s", ErrUnknownSensor, sensorID)
	}
	return spec, nil
}

// Sensors returns the registered sensor IDs, sorted.
func (db *DB) Sensors() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.sensors))
	for id := range db.sensors {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// InsertReading stores a sensor reading (resolving its location to a
// universe-frame MBR if the adapter has not already) and fires any
// matching triggers synchronously. The sensor must be registered.
func (db *DB) InsertReading(r model.Reading) error {
	start := time.Now()
	if r.MObjectID == "" {
		mInsertErrors.Inc()
		return fmt.Errorf("spatialdb: reading without mobject id")
	}
	db.mu.Lock()
	visits0 := db.objIdx.Visits() + db.triggerIdx.Visits()
	spec, ok := db.sensors[r.SensorID]
	if !ok {
		db.mu.Unlock()
		mInsertErrors.Inc()
		return fmt.Errorf("%w: %s", ErrUnknownSensor, r.SensorID)
	}
	if r.SensorType == "" {
		r.SensorType = spec.Type
	}
	if !r.Region.Valid() || r.Region.Area() == 0 {
		rect, err := db.resolveReadingLocked(r, spec)
		if err != nil {
			db.mu.Unlock()
			mInsertErrors.Inc()
			return fmt.Errorf("insert reading from %s: %w", r.SensorID, err)
		}
		r.Region = rect
	}
	// Movement detection: compare with the previous reading from the
	// same sensor for the same object.
	prev := db.readings[r.MObjectID]
	for i := len(prev) - 1; i >= 0; i-- {
		if prev[i].SensorID == r.SensorID {
			if !prev[i].Region.Eq(r.Region) {
				r.Moving = true
			}
			break
		}
	}
	rows := append(db.readings[r.MObjectID], r)
	// Bound per-object storage: long-TTL sensors (desktop sessions,
	// biometric long readings) must not accumulate without limit. The
	// newest rows win; fusion only consumes the latest row per sensor
	// anyway.
	if len(rows) > maxReadingsPerObject {
		rows = append(rows[:0], rows[len(rows)-maxReadingsPerObject:]...)
	}
	db.readings[r.MObjectID] = rows

	// Collect matching triggers under the lock, fire after release.
	var fired []TriggerEvent
	var fns []TriggerFunc
	for _, it := range db.triggerIdx.SearchIntersect(r.Region) {
		tr := db.triggers[it.ID]
		if tr == nil {
			continue
		}
		if tr.mobject != "" && tr.mobject != r.MObjectID {
			continue
		}
		fired = append(fired, TriggerEvent{TriggerID: tr.id, Reading: r, Region: tr.region})
		fns = append(fns, tr.fn)
	}
	hooks := db.hooks
	visitDelta := db.objIdx.Visits() + db.triggerIdx.Visits() - visits0
	db.mu.Unlock()

	// The db_insert stage ends here: storage and trigger matching are
	// done; what follows (trigger evaluation, hooks) is accounted to the
	// downstream stages.
	mInsertVisits.Add(uint64(visitDelta))
	db.syncVisitsGauge()
	mInsertUs.Observe(float64(time.Since(start).Microseconds()))
	mInserts.Inc()
	mTriggerMatches.Add(uint64(len(fns)))
	obs.SpanSince(r.Trace, "db_insert", start)

	for i, fn := range fns {
		fn(fired[i])
	}
	for _, h := range hooks {
		h(r)
	}
	return nil
}

// AddInsertHook registers a callback invoked after every successful
// reading insert, once the matching triggers have fired. Hooks run on
// the inserting goroutine outside the database lock. The Location
// Service uses one to observe readings that fall outside any trigger
// region (exit detection for entry/exit subscriptions).
func (db *DB) AddInsertHook(fn func(model.Reading)) {
	if fn == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.hooks = append(db.hooks, fn)
}

// resolveReadingLocked computes the reading's universe-frame MBR from
// its GLOB location and detection radius.
func (db *DB) resolveReadingLocked(r model.Reading, spec model.SensorSpec) (geom.Rect, error) {
	if r.Location.IsZero() {
		return geom.Rect{}, fmt.Errorf("%w: reading has no location", ErrBadGeometry)
	}
	if r.Location.IsCoordinate() {
		rect, err := db.resolveGLOBLocked(r.Location)
		if err != nil {
			return geom.Rect{}, err
		}
		radius := r.DetectionRadius
		if radius == 0 && spec.Resolution.Kind == model.ResolutionDistance {
			radius = spec.Resolution.Radius
		}
		return rect.Expand(radius), nil
	}
	return db.resolveGLOBLocked(r.Location)
}

// ReadingsFor returns the unexpired readings for a mobile object at
// time now, applying each sensor's TTL from the metadata table.
// Expired rows are pruned as a side effect.
func (db *DB) ReadingsFor(mobjectID string, now time.Time) []model.Reading {
	db.mu.Lock()
	defer db.mu.Unlock()
	rows := db.readings[mobjectID]
	var live []model.Reading
	for _, r := range rows {
		spec, ok := db.sensors[r.SensorID]
		if !ok {
			continue
		}
		if !r.Expired(now, spec.TTL) {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		delete(db.readings, mobjectID)
	} else {
		db.readings[mobjectID] = live
	}
	return append([]model.Reading(nil), live...)
}

// LatestPerSensor returns, for each sensor that has an unexpired
// reading for the object, only its newest one — the working set for
// fusion.
func (db *DB) LatestPerSensor(mobjectID string, now time.Time) []model.Reading {
	rows := db.ReadingsFor(mobjectID, now)
	latest := make(map[string]model.Reading, len(rows))
	for _, r := range rows {
		if cur, ok := latest[r.SensorID]; !ok || r.Time.After(cur.Time) {
			latest[r.SensorID] = r
		}
	}
	out := make([]model.Reading, 0, len(latest))
	for _, r := range latest {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SensorID < out[j].SensorID })
	return out
}

// MobileObjects returns the IDs of all objects with stored readings,
// sorted.
func (db *DB) MobileObjects() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.readings))
	for id := range db.readings {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ExpireReadings removes every reading for every object that has
// outlived its sensor's TTL at time now, and expires readings matching
// the filter immediately (used by the biometric logout flow, §6.3).
func (db *DB) ExpireReadings(now time.Time, match func(model.Reading) bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for id, rows := range db.readings {
		var live []model.Reading
		for _, r := range rows {
			spec, ok := db.sensors[r.SensorID]
			if !ok || r.Expired(now, spec.TTL) {
				continue
			}
			if match != nil && match(r) {
				continue
			}
			live = append(live, r)
		}
		if len(live) == 0 {
			delete(db.readings, id)
		} else {
			db.readings[id] = live
		}
	}
}

// ---------------------------------------------------------------------------
// Triggers

// AddTrigger registers a spatial trigger: fn fires whenever a reading
// for mobjectID (any object if empty) intersects region. The trigger
// region is indexed so inserts stay sub-linear in the number of
// triggers.
func (db *DB) AddTrigger(id, mobjectID string, region geom.Rect, fn TriggerFunc) error {
	if id == "" || fn == nil {
		return fmt.Errorf("%w: need id and callback", ErrBadTrigger)
	}
	if !region.Valid() || region.Area() <= 0 {
		return fmt.Errorf("%w: degenerate region %v", ErrBadTrigger, region)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.triggers[id]; ok {
		return fmt.Errorf("%w: trigger %s", ErrDuplicate, id)
	}
	tr := &trigger{id: id, mobject: mobjectID, region: region, fn: fn}
	db.triggers[id] = tr
	db.triggerIdx.Insert(region, id)
	return nil
}

// RemoveTrigger unregisters a trigger.
func (db *DB) RemoveTrigger(id string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	tr, ok := db.triggers[id]
	if !ok {
		return fmt.Errorf("%w: trigger %s", ErrNotFound, id)
	}
	db.triggerIdx.Delete(tr.region, id)
	delete(db.triggers, id)
	return nil
}

// TriggerCount returns the number of registered triggers.
func (db *DB) TriggerCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.triggers)
}
