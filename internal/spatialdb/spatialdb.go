// Package spatialdb is MiddleWhere's spatial database (§5) — the
// in-process substitute for the PostGIS/PostgreSQL instance the paper
// deploys. It stores
//
//   - the physical-space object table (Table 1: ObjectIdentifier,
//     GlobPrefix, ObjectType, GeometryType, Points),
//   - the sensor-reading table (Table 2) with temporal information,
//   - the per-sensor metadata table (confidence and time-to-live,
//     §5.2), and
//   - location triggers (§5.3) evaluated on every reading insert.
//
// The database is sharded by floor: the top-two GLOB path components
// ("CS/Floor3") key a shard owning its own object table, R-tree,
// reading table and locks, so ingest and expiry on independent floors
// never contend and each R-tree stays bounded by one floor's
// population (the role table partitioning plays for the paper's
// PostGIS deployment). A copy-on-write snapshot layer (Snapshot) cuts
// a consistent, immutable view across every shard for region queries
// and batched trigger evaluation.
//
// Geometry is indexed with an R-tree so containment/intersection
// queries and trigger matching stay sub-linear in table size, the role
// PostGIS's GiST indexes play in the paper's deployment. All methods
// are safe for concurrent use.
package spatialdb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"middlewhere/internal/coords"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
	"middlewhere/internal/rtree"
)

// Database metrics, cached once so the hot paths are pure atomics.
var (
	mInserts        = obs.Default().Counter("spatialdb_inserts_total")
	mInsertErrors   = obs.Default().Counter("spatialdb_insert_errors_total")
	mInsertUs       = obs.Default().Histogram("spatialdb_insert_us")
	mQueries        = obs.Default().Counter("spatialdb_queries_total")
	mQueryUs        = obs.Default().Histogram("spatialdb_query_us")
	mTriggerMatches = obs.Default().Counter("spatialdb_trigger_matches_total")
	mBatchInserts   = obs.Default().Counter("spatialdb_batch_inserts_total")
	mBatchRows      = obs.Default().Histogram("spatialdb_batch_rows")
	// mInsertVisits is approximate since the per-table lock split:
	// trigger matching runs under a shared lock, so concurrent searches
	// can cross-attribute Visits() deltas. The totals still converge.
	mInsertVisits = obs.Default().Counter("rtree_insert_visits_total")
	// mVisitsGauge mirrors the cumulative node visits across every
	// shard's object index plus the trigger index; refreshed after
	// every insert and query rather than delta-tracked, because
	// concurrent readers would cross-attribute deltas.
	mVisitsGauge = obs.Default().Gauge("rtree_node_visits")
)

// syncVisitsGauge refreshes the cumulative R-tree visit gauge; safe to
// call without locks (tree visit counters are atomic).
func (db *DB) syncVisitsGauge() {
	total := db.triggerIdx.Visits()
	for _, sh := range db.allShards() {
		total += sh.objIdx.Visits()
	}
	mVisitsGauge.Set(float64(total))
}

// observeQuery records one spatial query's latency; used as
// `defer db.observeQuery(time.Now())`.
func (db *DB) observeQuery(start time.Time) {
	mQueries.Inc()
	mQueryUs.Observe(float64(time.Since(start).Microseconds()))
	db.syncVisitsGauge()
}

// Object is one row of the physical-space table (Table 1) plus the
// spatial properties of §5.1 (location, dimension, orientation and
// free-form attributes such as "power-outlets").
type Object struct {
	// GLOB names the object: GlobPrefix + ObjectIdentifier.
	GLOB glob.GLOB
	// Type is the semantic type: "Floor", "Room", "Corridor", "Door",
	// "Display", "Table", ...
	Type string
	// Kind is the geometry type (point, line, polygon).
	Kind glob.Kind
	// LocalPoints is the geometry in the coordinate frame of the
	// object's GlobPrefix, as stored in the Points column.
	LocalPoints []geom.Point
	// Bounds is the MBR of the geometry in the universe frame,
	// maintained by the database.
	Bounds geom.Rect
	// Polygon is the exact geometry in the universe frame (for
	// polygon objects); nil for points and lines.
	Polygon geom.Polygon
	// Properties holds free-form attributes used by property queries
	// ("power-outlets": "yes", "bluetooth": "high").
	Properties map[string]string
}

// ID returns the object's full GLOB string, the primary key of the
// object table.
func (o Object) ID() string { return o.GLOB.String() }

// Sentinel errors.
var (
	ErrNotFound      = errors.New("spatialdb: not found")
	ErrDuplicate     = errors.New("spatialdb: duplicate")
	ErrBadGeometry   = errors.New("spatialdb: bad geometry")
	ErrUnknownSensor = errors.New("spatialdb: unknown sensor")
	ErrBadTrigger    = errors.New("spatialdb: bad trigger")
)

// TriggerEvent is delivered to a trigger's callback when a matching
// sensor reading is inserted (§5.3).
type TriggerEvent struct {
	// TriggerID identifies the fired trigger.
	TriggerID string
	// Reading is the inserted reading that satisfied the spatial
	// condition.
	Reading model.Reading
	// Region is the trigger's region.
	Region geom.Rect
}

// TriggerFunc receives trigger events. It is called synchronously on
// the inserting goroutine; long-running work must be handed off by the
// callee (the Location Service hands events to its notifier).
type TriggerFunc func(TriggerEvent)

// trigger is a registered spatial trigger condition.
type trigger struct {
	id string
	// mobject filters on the observed object; empty matches any.
	mobject string
	region  geom.Rect
	fn      TriggerFunc
}

// maxReadingsPerObject bounds the stored rows per mobile object; the
// newest rows are kept. 64 comfortably covers every deployed sensor
// reporting at once with history to spare.
const maxReadingsPerObject = 64

// sensorTable is the immutable sensor metadata view (§5.2). The
// current view hangs off an atomic pointer, so spec lookups on the
// ingest and locate hot paths are lock-free; registration replaces the
// whole view (sensors register at startup, effectively never after).
type sensorTable struct {
	specs map[string]model.SensorSpec
	gen   uint64
}

// DB is the spatial database: a router over per-floor shards (see
// shard) plus the tables that are genuinely global — sensor metadata,
// triggers, and insert hooks. Locks nest in the fixed order
//
//	batch bracket (pending / cutGate, cut.go) → migMu → shard.readMu
//
// for reading writes; shard.objMu and trigMu are only ever held alone
// (hookMu is independent and never held together with the others).
// There is deliberately no global mutex on the Snapshot/ingest pair:
// cuts coordinate with writers through the per-shard epoch vector
// (shard.pending / shard.cutSeq) and the escalation gate — see cut.go.
type DB struct {
	// frames is immutable after New; symbolic GLOB resolution walks
	// objects and frames together.
	frames   *coords.Tree
	universe geom.Rect

	// Shard directory. order is the shards sorted by key, replaced
	// wholesale on shard creation so holders iterate without a lock.
	shardMu sync.RWMutex
	shards  map[string]*shard
	order   []*shard

	// objGen counts object-table structural changes across all shards
	// (insert/delete); readers use it to detect stale cached
	// resolutions without any lock.
	objGen atomic.Uint64

	// residence maps a mobile object's ID to the shard holding its
	// reading rows and epoch counter (object IDs are not GLOBs, so the
	// rows live where the object's readings place it). Placement
	// changes — first insert, floor migration — serialize on migMu;
	// see placeObject.
	residence sync.Map
	migMu     sync.Mutex

	// sensorView is the current sensor metadata table; see sensorTable.
	sensorRegMu sync.Mutex
	sensorView  atomic.Pointer[sensorTable]

	// Cut-protocol escalation gate (cut.go): when a Snapshot's
	// optimistic sweep keeps losing races, it closes cutGate, waits on
	// gateCond for in-flight mutation brackets to drain, captures, and
	// reopens. Writers check the gate atomically in beginBatch — the
	// mutex and condvar are touched only while the gate is closed.
	cutGate  atomic.Bool
	gateMu   sync.Mutex
	gateCond *sync.Cond

	// curSnap is the most recent Snapshot — the one-deep snapshot pool.
	// Snapshot revalidates it against the epoch vector and hands it out
	// again when nothing changed (see cutUnchanged).
	curSnap atomic.Pointer[Snapshot]

	// Location triggers (§5.3) and their R-tree index. Trigger regions
	// routinely span floors, so the index stays global.
	trigMu     sync.RWMutex
	triggers   map[string]*trigger
	triggerIdx *rtree.Tree

	// hooks run after every successful reading insert (and after the
	// matching triggers), outside all table locks.
	hookMu sync.RWMutex
	hooks  []func(model.Reading)

	// fanout, when set, runs cross-shard query work in parallel; see
	// SetFanout.
	fanout atomic.Pointer[func(n int, fn func(int))]

	// lastSnap is the unix-microsecond time of the last Snapshot call
	// (creation time before the first), feeding the snapshot-age gauge.
	lastSnap atomic.Int64
}

// New creates a database over the given coordinate frame tree. The
// universe rectangle (the building's floor area, the paper's U) bounds
// all geometry and probability reasoning.
func New(frames *coords.Tree, universe geom.Rect) *DB {
	db := &DB{
		frames:     frames,
		shards:     make(map[string]*shard),
		triggers:   make(map[string]*trigger),
		triggerIdx: rtree.New(),
		universe:   universe,
	}
	db.sensorView.Store(&sensorTable{specs: make(map[string]model.SensorSpec)})
	db.lastSnap.Store(time.Now().UnixMicro())
	db.gateCond = sync.NewCond(&db.gateMu)
	return db
}

// Universe returns the universe rectangle.
func (db *DB) Universe() geom.Rect { return db.universe }

// Frames returns the coordinate frame tree the database resolves
// against.
func (db *DB) Frames() *coords.Tree { return db.frames }

// ---------------------------------------------------------------------------
// Object table

// InsertObject adds an object. Its geometry is resolved from the
// GlobPrefix frame into the universe frame, and the row is homed on
// the shard of its GLOB's top-two path components.
func (db *DB) InsertObject(o Object) error {
	if o.GLOB.IsZero() {
		return fmt.Errorf("%w: empty GLOB", ErrBadGeometry)
	}
	if len(o.LocalPoints) == 0 {
		return fmt.Errorf("%w: object %s has no points", ErrBadGeometry, o.ID())
	}
	id := o.ID()
	sh := db.ensureShard(shardKeyForGLOB(o.GLOB))
	sh.objMu.Lock()
	defer sh.objMu.Unlock()
	if _, ok := sh.objects[id]; ok {
		return fmt.Errorf("%w: object %s", ErrDuplicate, id)
	}
	resolved, poly, err := db.resolveFrames(o.GLOB.Prefix(), o.LocalPoints)
	if err != nil {
		return fmt.Errorf("insert object %s: %w", id, err)
	}
	stored := o
	stored.LocalPoints = append([]geom.Point(nil), o.LocalPoints...)
	stored.Bounds = resolved
	if o.Kind == glob.KindPolygon {
		stored.Polygon = poly
	}
	if o.Properties != nil {
		props := make(map[string]string, len(o.Properties))
		for k, v := range o.Properties {
			props[k] = v
		}
		stored.Properties = props
	}
	sh.mutableObjects()
	sh.objects[id] = &stored
	sh.objIdx.Insert(stored.Bounds, id)
	sh.mRTreeNodes.Set(float64(sh.objIdx.Len()))
	db.objGen.Add(1)
	return nil
}

// resolveFrames converts local-frame points into the universe frame.
// The frame tree is immutable, so no lock is needed.
func (db *DB) resolveFrames(prefix glob.GLOB, pts []geom.Point) (geom.Rect, geom.Polygon, error) {
	frame, ok := db.frames.FrameForGLOBPath(prefix.Path)
	if !ok {
		return geom.Rect{}, nil, fmt.Errorf("no coordinate frame for prefix %q", prefix.String())
	}
	root, err := db.frames.Root(frame)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	poly, err := db.frames.ConvertPolygon(geom.Polygon(pts), frame, root)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	return poly.Bounds(), poly, nil
}

// GetObject returns an object by its GLOB string.
func (db *DB) GetObject(id string) (Object, error) {
	if sh, ok := db.shardFor(shardKeyForID(id)); ok {
		sh.objMu.RLock()
		defer sh.objMu.RUnlock()
		if o, ok := sh.objects[id]; ok {
			return o.clone(), nil
		}
	}
	return Object{}, fmt.Errorf("%w: object %s", ErrNotFound, id)
}

// DeleteObject removes an object.
func (db *DB) DeleteObject(id string) error {
	sh, ok := db.shardFor(shardKeyForID(id))
	if !ok {
		return fmt.Errorf("%w: object %s", ErrNotFound, id)
	}
	sh.objMu.Lock()
	defer sh.objMu.Unlock()
	o, ok := sh.objects[id]
	if !ok {
		return fmt.Errorf("%w: object %s", ErrNotFound, id)
	}
	sh.mutableObjects()
	sh.objIdx.Delete(o.Bounds, id)
	delete(sh.objects, id)
	sh.mRTreeNodes.Set(float64(sh.objIdx.Len()))
	db.objGen.Add(1)
	return nil
}

// Objects returns all objects sorted by ID. The scan runs against one
// consistent cut of every shard's object table (captured lock-free via
// copy-on-write), so a concurrent insert is either fully visible or
// not at all — never split across shards.
func (db *DB) Objects() []Object {
	views := db.objectViews()
	var n int
	for _, v := range views {
		n += len(v.objects)
	}
	out := make([]Object, 0, n)
	for _, v := range views {
		for _, o := range v.objects {
			out = append(out, o.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

func (o *Object) clone() Object {
	out := *o
	out.LocalPoints = append([]geom.Point(nil), o.LocalPoints...)
	out.Polygon = append(geom.Polygon(nil), o.Polygon...)
	if o.Properties != nil {
		props := make(map[string]string, len(o.Properties))
		for k, v := range o.Properties {
			props[k] = v
		}
		out.Properties = props
	}
	return out
}

// ObjectFilter narrows object queries.
type ObjectFilter struct {
	// Type restricts to a semantic type; empty matches all.
	Type string
	// Prefix restricts to objects under a GLOB prefix; zero matches
	// all.
	Prefix glob.GLOB
	// Properties lists attributes the object must carry with the given
	// values.
	Properties map[string]string
}

func (f ObjectFilter) match(o *Object) bool {
	if f.Type != "" && !strings.EqualFold(f.Type, o.Type) {
		return false
	}
	if !f.Prefix.IsZero() && !o.GLOB.HasPrefix(f.Prefix) {
		return false
	}
	for k, v := range f.Properties {
		if o.Properties[k] != v {
			return false
		}
	}
	return true
}

// searchViews fans an R-tree search across every shard's object view,
// collecting matches into index-addressed slots — so serial and
// parallel fan-out produce identical result sets, and the final sort
// makes the order deterministic.
func (db *DB) searchViews(search func(v objView) []Object) []Object {
	views := db.objectViews()
	perShard := make([][]Object, len(views))
	db.fanShards(len(views), func(i int) {
		perShard[i] = search(views[i])
		views[i].done()
	})
	var out []Object
	for _, part := range perShard {
		out = append(out, part...)
	}
	return out
}

// IntersectingObjects returns objects whose universe-frame MBR
// intersects r, filtered, sorted by ID. The search fans out across
// shards when a parallel runner is installed (SetFanout).
func (db *DB) IntersectingObjects(r geom.Rect, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	out := db.searchViews(func(v objView) []Object {
		var part []Object
		for _, it := range v.idx.SearchIntersect(r) {
			o := v.objects[it.ID]
			if o != nil && f.match(o) {
				part = append(part, o.clone())
			}
		}
		return part
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ContainedObjects returns objects fully inside r, filtered, sorted by
// ID.
func (db *DB) ContainedObjects(r geom.Rect, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	out := db.searchViews(func(v objView) []Object {
		var part []Object
		for _, it := range v.idx.SearchContained(r) {
			o := v.objects[it.ID]
			if o != nil && f.match(o) {
				part = append(part, o.clone())
			}
		}
		return part
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ObjectsAt returns the objects whose MBR contains the point (deepest
// GLOB first — the room before the floor).
func (db *DB) ObjectsAt(p geom.Point, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	out := db.searchViews(func(v objView) []Object {
		var part []Object
		for _, it := range v.idx.SearchContaining(p) {
			o := v.objects[it.ID]
			if o != nil && f.match(o) {
				part = append(part, o.clone())
			}
		}
		return part
	})
	sort.Slice(out, func(i, j int) bool {
		if d1, d2 := out[i].GLOB.Depth(), out[j].GLOB.Depth(); d1 != d2 {
			return d1 > d2
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

// Nearest answers property queries such as "the nearest region with
// power outlets and high Bluetooth signal" (§5.1): the k objects
// passing the filter closest to p. Each shard contributes its own k
// best candidates; the merge keeps the global k by (distance, ID).
func (db *DB) Nearest(p geom.Point, k int, f ObjectFilter) []Object {
	defer db.observeQuery(time.Now())
	type cand struct {
		obj  Object
		dist float64
	}
	views := db.objectViews()
	perShard := make([][]cand, len(views))
	db.fanShards(len(views), func(vi int) {
		v := views[vi]
		// Over-fetch from the index and filter; property predicates
		// cannot be pushed into the R-tree.
		var part []cand
		fetch := k * 4
		if fetch < 16 {
			fetch = 16
		}
		for len(part) < k {
			items := v.idx.Nearest(p, fetch)
			part = part[:0]
			for _, it := range items {
				o := v.objects[it.ID]
				if o != nil && f.match(o) {
					part = append(part, cand{obj: o.clone(), dist: it.Rect.DistToPoint(p)})
					if len(part) == k {
						break
					}
				}
			}
			if len(items) < fetch {
				break // exhausted the shard
			}
			fetch *= 2
		}
		v.done()
		perShard[vi] = part
	})
	var all []cand
	for _, part := range perShard {
		all = append(all, part...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].obj.ID() < all[j].obj.ID()
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Object, 0, len(all))
	for _, c := range all {
		out = append(out, c.obj)
	}
	return out
}

// ResolveGLOB converts any GLOB — symbolic or coordinate — to its MBR
// in the universe frame. Symbolic GLOBs are looked up in the object
// table (one shard, by prefix); coordinate GLOBs are transformed from
// their prefix frame.
func (db *DB) ResolveGLOB(g glob.GLOB) (geom.Rect, error) {
	if g.IsZero() {
		return geom.Rect{}, fmt.Errorf("%w: empty GLOB", ErrBadGeometry)
	}
	if g.IsCoordinate() {
		r, _, err := db.resolveFrames(g.Prefix(), g.PlanarPoints())
		return r, err
	}
	if sh, ok := db.shardFor(shardKeyForGLOB(g)); ok {
		sh.objMu.RLock()
		o, ok := sh.objects[g.String()]
		sh.objMu.RUnlock()
		if ok {
			return o.Bounds, nil
		}
	}
	return geom.Rect{}, fmt.Errorf("%w: symbolic location %s", ErrNotFound, g.String())
}

// ObjectGeneration returns a counter bumped on every object-table
// change (insert or delete). A cached symbolic resolution is still
// valid while the generation it was computed under is unchanged.
func (db *DB) ObjectGeneration() uint64 { return db.objGen.Load() }

// ---------------------------------------------------------------------------
// Triggers

// AddTrigger registers a spatial trigger: fn fires whenever a reading
// for mobjectID (any object if empty) intersects region. The trigger
// region is indexed so inserts stay sub-linear in the number of
// triggers.
func (db *DB) AddTrigger(id, mobjectID string, region geom.Rect, fn TriggerFunc) error {
	if id == "" || fn == nil {
		return fmt.Errorf("%w: need id and callback", ErrBadTrigger)
	}
	if !region.Valid() || region.Area() <= 0 {
		return fmt.Errorf("%w: degenerate region %v", ErrBadTrigger, region)
	}
	db.trigMu.Lock()
	defer db.trigMu.Unlock()
	if _, ok := db.triggers[id]; ok {
		return fmt.Errorf("%w: trigger %s", ErrDuplicate, id)
	}
	tr := &trigger{id: id, mobject: mobjectID, region: region, fn: fn}
	db.triggers[id] = tr
	db.triggerIdx.Insert(region, id)
	return nil
}

// RemoveTrigger unregisters a trigger.
func (db *DB) RemoveTrigger(id string) error {
	db.trigMu.Lock()
	defer db.trigMu.Unlock()
	tr, ok := db.triggers[id]
	if !ok {
		return fmt.Errorf("%w: trigger %s", ErrNotFound, id)
	}
	db.triggerIdx.Delete(tr.region, id)
	delete(db.triggers, id)
	return nil
}

// TriggerCount returns the number of registered triggers.
func (db *DB) TriggerCount() int {
	db.trigMu.RLock()
	defer db.trigMu.RUnlock()
	return len(db.triggers)
}

// AddInsertHook registers a callback invoked after every successful
// reading insert, once the matching triggers have fired. Hooks run on
// the inserting goroutine outside the table locks. The Location
// Service uses one to observe readings that fall outside any trigger
// region (exit detection for entry/exit subscriptions).
func (db *DB) AddInsertHook(fn func(model.Reading)) {
	if fn == nil {
		return
	}
	db.hookMu.Lock()
	defer db.hookMu.Unlock()
	db.hooks = append(db.hooks, fn)
}
