package spatialdb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

func TestReadingEpochAndGenerations(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("s1", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	sg := db.SensorGeneration()
	og := db.ObjectGeneration()
	if db.ReadingEpoch("bob") != 0 {
		t.Error("fresh object should be at epoch 0")
	}
	r := model.Reading{SensorID: "s1", MObjectID: "bob",
		Location: glob.MustParse("CS/Floor3/(50,50)"), Time: t0}
	if err := db.InsertReading(r); err != nil {
		t.Fatal(err)
	}
	if got := db.ReadingEpoch("bob"); got != 1 {
		t.Errorf("epoch after insert = %d, want 1", got)
	}
	if db.ReadingEpoch("alice") != 0 {
		t.Error("insert for bob must not bump alice's epoch")
	}
	// Forced expiry (a live row removed) bumps the epoch; natural TTL
	// aging does not need to, since age is part of the cache key.
	db.ExpireReadings(t0, func(model.Reading) bool { return true })
	if got := db.ReadingEpoch("bob"); got != 2 {
		t.Errorf("epoch after forced expiry = %d, want 2", got)
	}
	if db.SensorGeneration() == sg {
		// RegisterSensor above ran before sg was read; register another.
		t.Log("sensor generation unchanged so far (expected)")
	}
	if err := db.RegisterSensor("s2", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	if db.SensorGeneration() <= sg {
		t.Error("RegisterSensor must bump the sensor generation")
	}
	if err := db.InsertObject(roomObject("3199",
		geom.Pt(400, 0), geom.Pt(420, 0), geom.Pt(420, 30), geom.Pt(400, 30))); err != nil {
		t.Fatal(err)
	}
	if db.ObjectGeneration() <= og {
		t.Error("InsertObject must bump the object generation")
	}
}

func TestSensorSnapshot(t *testing.T) {
	db := testDB(t)
	if err := db.RegisterSensor("s1", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	specs, gen := db.SensorSnapshot()
	if len(specs) != 1 || gen != db.SensorGeneration() {
		t.Fatalf("snapshot = %d specs at gen %d", len(specs), gen)
	}
	// The snapshot is a copy: mutating it must not affect the registry.
	delete(specs, "s1")
	if _, err := db.SensorSpec("s1"); err != nil {
		t.Error("registry lost a sensor through a snapshot mutation")
	}
	if err := db.RegisterSensor("s2", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	specs2, gen2 := db.SensorSnapshot()
	if len(specs2) != 2 || gen2 <= gen {
		t.Errorf("snapshot after register = %d specs at gen %d (was %d)", len(specs2), gen2, gen)
	}
}

func TestInsertReadingsBatch(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("s1", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	rs := []model.Reading{
		{SensorID: "s1", MObjectID: "bob", Location: glob.MustParse("CS/Floor3/(50,50)"), Time: t0},
		{SensorID: "zz", MObjectID: "bob", Location: glob.MustParse("CS/Floor3/(51,50)"), Time: t0},
		{SensorID: "s1", MObjectID: "alice", Location: glob.MustParse("CS/Floor3/(52,50)"), Time: t0},
	}
	n, err := db.InsertReadings(rs, nil)
	if n != 2 {
		t.Errorf("stored %d readings, want 2", n)
	}
	if !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("batch error = %v, want ErrUnknownSensor", err)
	}
	if got := db.ReadingEpoch("bob"); got != 1 {
		t.Errorf("bob epoch = %d, want 1", got)
	}
	if got := db.ReadingEpoch("alice"); got != 1 {
		t.Errorf("alice epoch = %d, want 1", got)
	}
	if got := len(db.ReadingsFor("bob", t0)); got != 1 {
		t.Errorf("bob has %d readings, want 1", got)
	}
}

// TestInsertReadingsTriggerParity checks that a dispatcher receives
// the same firings, in the same per-object order, as the serial path
// produces.
func TestInsertReadingsTriggerParity(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("s1", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var serialIDs, dispatchedIDs []string
	record := func(ev TriggerEvent) {
		mu.Lock()
		serialIDs = append(serialIDs, ev.TriggerID+"/"+ev.Reading.MObjectID)
		mu.Unlock()
	}
	if err := db.AddTrigger("t-room", "", geom.R(330, 0, 350, 30), record); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTrigger("t-alice", "alice", geom.R(0, 0, 500, 100), record); err != nil {
		t.Fatal(err)
	}
	rs := []model.Reading{
		{SensorID: "s1", MObjectID: "bob", Location: glob.MustParse("CS/Floor3/3105/(5,5)"), Time: t0},
		{SensorID: "s1", MObjectID: "alice", Location: glob.MustParse("CS/Floor3/(50,50)"), Time: t0.Add(time.Millisecond)},
	}
	// Serial (nil dispatcher) — the baseline.
	if _, err := db.InsertReadings(rs, nil); err != nil {
		t.Fatal(err)
	}
	// Fresh DB, explicit dispatcher running everything inline.
	db2 := testDB(t)
	paperFloor(t, db2)
	if err := db2.RegisterSensor("s1", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	record2 := func(ev TriggerEvent) {
		mu.Lock()
		dispatchedIDs = append(dispatchedIDs, ev.TriggerID+"/"+ev.Reading.MObjectID)
		mu.Unlock()
	}
	if err := db2.AddTrigger("t-room", "", geom.R(330, 0, 350, 30), record2); err != nil {
		t.Fatal(err)
	}
	if err := db2.AddTrigger("t-alice", "alice", geom.R(0, 0, 500, 100), record2); err != nil {
		t.Fatal(err)
	}
	dispatch := func(fs []TriggerFiring) {
		for _, f := range fs {
			f.Fn(f.Event)
		}
	}
	if _, err := db2.InsertReadings(rs, dispatch); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(serialIDs) != 2 || len(dispatchedIDs) != 2 {
		t.Fatalf("firings: serial %v, dispatched %v", serialIDs, dispatchedIDs)
	}
	for i := range serialIDs {
		if serialIDs[i] != dispatchedIDs[i] {
			t.Errorf("firing %d: serial %s != dispatched %s", i, serialIDs[i], dispatchedIDs[i])
		}
	}
}

func TestInsertReadingsEmptyAndAllBad(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if n, err := db.InsertReadings(nil, nil); n != 0 || err != nil {
		t.Errorf("empty batch = %d, %v", n, err)
	}
	rs := []model.Reading{
		{SensorID: "zz", MObjectID: "bob", Location: glob.MustParse("CS/Floor3/(50,50)"), Time: t0},
		{SensorID: "zz", MObjectID: "eve", Location: glob.MustParse("CS/Floor3/(51,50)"), Time: t0},
	}
	n, err := db.InsertReadings(rs, nil)
	if n != 0 || err == nil {
		t.Errorf("all-bad batch = %d, %v", n, err)
	}
	if !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("joined error lost the cause: %v", err)
	}
}
