package spatialdb

import (
	"sort"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/model"
)

// shardSnap is one shard's contribution to a Snapshot: the frozen
// reading table and the shard's write epoch at the cut.
type shardSnap struct {
	key   string
	epoch uint64
	table *readTable
}

// Snapshot is an immutable, consistent cut of the reading and sensor
// tables across every shard. Reads on a Snapshot take no locks and see
// a frozen state: concurrent inserts, expiries, and floor migrations
// never show through. A snapshot never observes part of an
// InsertReadings batch — the cut is serialized against in-flight
// batches, so each batch is either entirely visible or entirely
// absent.
//
// Snapshots are cheap: capture freezes the current tables (O(shards)
// pointer reads) and the next writer per shard pays one shallow table
// clone. Object tables are not captured here; object queries get their
// own consistent cut via objectViews (Objects, ObjectsInRegion's
// candidate search).
type Snapshot struct {
	universe geom.Rect
	at       time.Time
	sensors  *sensorTable
	shards   []shardSnap
}

// Snapshot captures a consistent cut of the database's reading and
// sensor tables. The returned view is immutable and safe for
// concurrent use; it reflects exactly the batches that completed
// before the call.
func (db *DB) Snapshot() *Snapshot {
	// Exclusive cutMu excludes every in-flight InsertReadings store
	// phase (shared holders), so no batch is mid-write anywhere and no
	// floor migration is in progress when the tables are frozen.
	db.cutMu.Lock()
	shards := db.allShards()
	snap := &Snapshot{
		universe: db.universe,
		at:       time.Now(),
		sensors:  db.sensorView.Load(),
		shards:   make([]shardSnap, len(shards)),
	}
	for i, sh := range shards {
		// The shard read-lock serializes against writers that do not
		// route through cutMu (TTL pruning, ExpireReadings).
		sh.readMu.RLock()
		snap.shards[i] = shardSnap{key: sh.key, epoch: sh.writeEpoch.Load(), table: sh.table}
		sh.readFrozen.Store(true)
		sh.readMu.RUnlock()
	}
	db.cutMu.Unlock()
	mSnapshots.Inc()
	db.lastSnap.Store(snap.at.UnixMicro())
	mSnapAgeUs.Set(0)
	return snap
}

// At returns the time the snapshot was captured.
func (s *Snapshot) At() time.Time { return s.at }

// Universe returns the database's universe extent.
func (s *Snapshot) Universe() geom.Rect { return s.universe }

// SensorSpecs returns the sensor metadata table at the cut. The map is
// shared and must not be mutated.
func (s *Snapshot) SensorSpecs() map[string]model.SensorSpec { return s.sensors.specs }

// SensorGeneration returns the sensor-table generation at the cut.
func (s *Snapshot) SensorGeneration() uint64 { return s.sensors.gen }

// rowsFor returns the object's raw rows at the cut. An object's rows
// live in exactly one shard at any cut (floor migration moves them
// atomically), so the first table that knows the object wins.
func (s *Snapshot) rowsFor(mobjectID string) []model.Reading {
	for i := range s.shards {
		if rows, ok := s.shards[i].table.rows[mobjectID]; ok {
			return rows
		}
	}
	return nil
}

// ReadingEpoch returns the object's reading epoch at the cut, 0 when
// the object had no rows. Epochs are strictly monotonic across floor
// migrations, so a cached result stamped with this value stays
// comparable against the live table.
func (s *Snapshot) ReadingEpoch(mobjectID string) uint64 {
	for i := range s.shards {
		if e, ok := s.shards[i].table.epochs[mobjectID]; ok {
			return e
		}
	}
	return 0
}

// ReadingsFor returns the object's rows at the cut that are unexpired
// at time now, applying each sensor's TTL from the captured metadata
// table. Unlike the live path it never prunes — the snapshot is
// immutable.
func (s *Snapshot) ReadingsFor(mobjectID string, now time.Time) []model.Reading {
	rows := s.rowsFor(mobjectID)
	if len(rows) == 0 {
		return nil
	}
	live := make([]model.Reading, 0, len(rows))
	for _, r := range rows {
		spec, ok := s.sensors.specs[r.SensorID]
		if !ok || r.Expired(now, spec.TTL) {
			continue
		}
		live = append(live, r)
	}
	return live
}

// LatestPerSensor returns, for each sensor with an unexpired reading
// for the object at the cut, only its newest one — the fusion working
// set, identical in shape to DB.LatestPerSensor.
func (s *Snapshot) LatestPerSensor(mobjectID string, now time.Time) []model.Reading {
	return latestPerSensor(s.ReadingsFor(mobjectID, now))
}

// MobileObjects returns the IDs of all objects with stored readings at
// the cut, sorted.
func (s *Snapshot) MobileObjects() []string {
	var out []string
	for i := range s.shards {
		for id := range s.shards[i].table.rows {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
