package spatialdb

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/model"
)

// snapPoolMaxAge bounds how stale a pooled snapshot may be before
// Snapshot cuts fresh even when nothing changed: spatialdb_snapshot_age_us
// stays bounded for consumers that alert on it. Package variable so the
// pool tests can shrink it.
var snapPoolMaxAge = 250 * time.Millisecond

// shardSnap is one shard's contribution to a Snapshot: the frozen
// reading table, the shard's write epoch at the cut, and the cutSeq
// value the capture validated against (used to revalidate the cut for
// pool reuse and to retry only moved shards during the sweep).
type shardSnap struct {
	key   string
	seq   uint64
	epoch uint64
	table *readTable
}

// Snapshot is an immutable, consistent cut of the reading and sensor
// tables across every shard. Reads on a Snapshot take no locks and see
// a frozen state: concurrent inserts, expiries, and floor migrations
// never show through. A snapshot never observes part of an
// InsertReadings batch — the cut protocol (cut.go) validates every
// shard's capture against its in-flight bracket count and mutation
// sequence, so each batch is either entirely visible or entirely
// absent.
//
// Snapshots are pooled: consecutive cuts with no intervening mutation
// share one Snapshot value, and unchanged shards keep their table
// clones across cuts. Callers must release each handle with Close when
// done; the spatialdb_snapshot_pool_live gauge counts open handles.
type Snapshot struct {
	universe geom.Rect
	at       time.Time
	sensors  *sensorTable
	shards   []shardSnap

	// refs counts open user handles plus one pool reference while this
	// snapshot is the database's curSnap. Close decrements; the value
	// only gates the live-handle gauge — the data is GC-managed and
	// stays valid for any holder regardless.
	refs atomic.Int32

	// objOnce/objIDs lazily memoize MobileObjects: the snapshot is
	// immutable, so the sorted ID list is computed once and shared by
	// every consumer (heatmap, region scans, triggers) for the pooled
	// snapshot's whole lifetime.
	objOnce sync.Once
	objIDs  []string
}

// Close releases a snapshot handle obtained from DB.Snapshot. Safe on
// nil and idempotent per handle in effect: extra Closes beyond the
// handle count are ignored. The snapshot's data remains readable after
// Close (it is immutable); Close only retires the handle from the
// pool-live accounting.
func (s *Snapshot) Close() {
	if s == nil {
		return
	}
	if s.refs.Add(-1) < 0 {
		s.refs.Add(1)
		return
	}
	mSnapPoolLive.Add(-1)
}

// captureShard optimistically captures one shard without any lock: it
// is valid only if no mutation bracket was in flight and the shard's
// cutSeq did not move across the capture. ok=false means the caller
// must retry this shard on the next sweep round.
func (db *DB) captureShard(sh *shard) (shardSnap, bool) {
	seq := sh.cutSeq.Load()
	if sh.pending.Load() != 0 {
		return shardSnap{}, false
	}
	t := sh.table.Load()
	epoch := sh.writeEpoch.Load()
	// Freeze before validating: if the validation passes, no writer
	// mutated between the table load and the freeze, so every later
	// writer clones first (mutableTable) and t is immutable forever. If
	// a writer raced past the freeze, the re-checks below catch it.
	sh.readFrozen.Store(true)
	if sh.pending.Load() != 0 || sh.cutSeq.Load() != seq {
		return shardSnap{}, false
	}
	return shardSnap{key: sh.key, seq: seq, epoch: epoch, table: t}, true
}

// capture assembles a consistent cut of every shard via the optimistic
// sweep (see cut.go): capture each shard, then keep re-verifying the
// whole set — re-capturing shards whose cutSeq moved or with brackets
// in flight — until one full round passes with every shard clean and
// nothing recaptured. The shard list is re-read every round so shards
// created mid-cut are included. prev (may be nil) seeds the captured
// set so shards unchanged since the previous cut reuse its clones.
// After snapSweepRounds unclean rounds it escalates to drainAndCapture.
func (db *DB) capture(prev *Snapshot) []shardSnap {
	captured := make(map[string]shardSnap)
	seeded := make(map[string]bool)
	if prev != nil {
		for _, ss := range prev.shards {
			captured[ss.key] = ss
			seeded[ss.key] = true
		}
	}
	for round := 0; round < snapSweepRounds; round++ {
		shards := db.allShards()
		clean := true
		for _, sh := range shards {
			ss, ok := captured[sh.key]
			if ok && sh.pending.Load() == 0 && sh.cutSeq.Load() == ss.seq {
				continue
			}
			if ok && !seeded[sh.key] {
				// A capture taken during THIS cut went stale: a writer
				// won the race this round. (A seeded entry from the
				// previous snapshot being outdated is expected, not a
				// retry.)
				mCutRetries.Inc()
			}
			clean = false
			delete(seeded, sh.key)
			if ss, ok = db.captureShard(sh); ok {
				captured[sh.key] = ss
			} else {
				delete(captured, sh.key)
			}
		}
		if clean {
			return orderedSnaps(shards, captured)
		}
		// An unclean round means writers hold brackets right now; yield
		// so they can finish instead of burning the next round spinning
		// against them (on GOMAXPROCS=1 the spin would otherwise block
		// the very writers it is waiting out until preemption).
		runtime.Gosched()
	}
	// Sustained ingest kept winning the race: close the gate, drain
	// in-flight brackets, and capture stably. New brackets park at the
	// gate (beginBatch), so every shard is quiescent here.
	mCutEscalations.Inc()
	db.gateMu.Lock()
	db.cutGate.Store(true)
	for !db.pendingDrained() {
		db.gateCond.Wait()
	}
	shards := db.allShards()
	for _, sh := range shards {
		ss, ok := captured[sh.key]
		if !ok || sh.cutSeq.Load() != ss.seq {
			seq := sh.cutSeq.Load()
			t := sh.table.Load()
			epoch := sh.writeEpoch.Load()
			sh.readFrozen.Store(true)
			captured[sh.key] = shardSnap{key: sh.key, seq: seq, epoch: epoch, table: t}
		}
	}
	db.cutGate.Store(false)
	db.gateCond.Broadcast()
	db.gateMu.Unlock()
	return orderedSnaps(shards, captured)
}

// orderedSnaps lays the captured map out in shard-key order (allShards
// order), dropping entries for shards no longer listed.
func orderedSnaps(shards []*shard, captured map[string]shardSnap) []shardSnap {
	out := make([]shardSnap, 0, len(shards))
	for _, sh := range shards {
		if ss, ok := captured[sh.key]; ok {
			out = append(out, ss)
		}
	}
	return out
}

// cutUnchanged reports whether prev still describes the database
// exactly: same shard set, and every shard quiescent at the cutSeq
// prev captured. True means prev IS a valid cut of the current state.
func (db *DB) cutUnchanged(prev *Snapshot) bool {
	shards := db.allShards()
	if len(shards) != len(prev.shards) {
		return false
	}
	// Both lists are sorted by key, so compare positionally.
	for i, sh := range shards {
		ss := &prev.shards[i]
		if sh.key != ss.key || sh.pending.Load() != 0 || sh.cutSeq.Load() != ss.seq {
			return false
		}
	}
	return db.sensorView.Load() == prev.sensors
}

// Snapshot captures a consistent cut of the database's reading and
// sensor tables. The returned view is immutable and safe for
// concurrent use; it reflects exactly the batches that completed
// before the call. The caller must Close the handle when done.
//
// Snapshot acquires no global mutex: the cut is a lock-free optimistic
// sweep over the per-shard epoch vector (cut.go), escalating to a
// bounded writer gate only under sustained contention. When nothing
// has mutated since the previous cut and that cut is younger than
// snapPoolMaxAge, the previous Snapshot is handed out again
// (spatialdb_snapshot_pool_hits).
func (db *DB) Snapshot() *Snapshot {
	if cur := db.curSnap.Load(); cur != nil &&
		time.Since(cur.at) <= snapPoolMaxAge && db.cutUnchanged(cur) {
		cur.refs.Add(1)
		mSnapPoolHits.Inc()
		mSnapPoolLive.Add(1)
		return cur
	}
	prev := db.curSnap.Load()
	snap := &Snapshot{
		universe: db.universe,
		at:       time.Now(),
		sensors:  db.sensorView.Load(),
		shards:   db.capture(prev),
	}
	if prev != nil {
		mSnapPoolRecycled.Inc()
	}
	snap.refs.Store(1)
	db.curSnap.Store(snap)
	mSnapshots.Inc()
	db.lastSnap.Store(snap.at.UnixMicro())
	mSnapAgeUs.Set(0)
	mSnapPoolLive.Add(1)
	return snap
}

// At returns the time the snapshot was captured.
func (s *Snapshot) At() time.Time { return s.at }

// Universe returns the database's universe extent.
func (s *Snapshot) Universe() geom.Rect { return s.universe }

// SensorSpecs returns the sensor metadata table at the cut. The map is
// shared and must not be mutated.
func (s *Snapshot) SensorSpecs() map[string]model.SensorSpec { return s.sensors.specs }

// SensorGeneration returns the sensor-table generation at the cut.
func (s *Snapshot) SensorGeneration() uint64 { return s.sensors.gen }

// rowsFor returns the object's raw rows at the cut. An object's rows
// live in exactly one shard at any cut (floor migration moves them
// atomically), so the first table that knows the object wins.
func (s *Snapshot) rowsFor(mobjectID string) []model.Reading {
	for i := range s.shards {
		if rows, ok := s.shards[i].table.rows[mobjectID]; ok {
			return rows
		}
	}
	return nil
}

// ReadingEpoch returns the object's reading epoch at the cut, 0 when
// the object had no rows. Epochs are strictly monotonic across floor
// migrations, so a cached result stamped with this value stays
// comparable against the live table.
func (s *Snapshot) ReadingEpoch(mobjectID string) uint64 {
	for i := range s.shards {
		if e, ok := s.shards[i].table.epochs[mobjectID]; ok {
			return e
		}
	}
	return 0
}

// ReadingsFor returns the object's rows at the cut that are unexpired
// at time now, applying each sensor's TTL from the captured metadata
// table. Unlike the live path it never prunes — the snapshot is
// immutable.
func (s *Snapshot) ReadingsFor(mobjectID string, now time.Time) []model.Reading {
	rows := s.rowsFor(mobjectID)
	if len(rows) == 0 {
		return nil
	}
	live := make([]model.Reading, 0, len(rows))
	for _, r := range rows {
		spec, ok := s.sensors.specs[r.SensorID]
		if !ok || r.Expired(now, spec.TTL) {
			continue
		}
		live = append(live, r)
	}
	return live
}

// LatestPerSensor returns, for each sensor with an unexpired reading
// for the object at the cut, only its newest one — the fusion working
// set, identical in shape to DB.LatestPerSensor.
func (s *Snapshot) LatestPerSensor(mobjectID string, now time.Time) []model.Reading {
	return latestPerSensor(s.ReadingsFor(mobjectID, now))
}

// MobileObjects returns the IDs of all objects with stored readings at
// the cut, sorted. The list is computed once per snapshot and shared:
// callers must not mutate it.
func (s *Snapshot) MobileObjects() []string {
	s.objOnce.Do(func() {
		n := 0
		for i := range s.shards {
			n += len(s.shards[i].table.rows)
		}
		out := make([]string, 0, n)
		for i := range s.shards {
			for id := range s.shards[i].table.rows {
				out = append(out, id)
			}
		}
		sort.Strings(out)
		s.objIDs = out
	})
	return s.objIDs
}

// Candidate is one support-index hit: a mobile object whose indexed
// support rectangle intersects a queried region. Support is the
// indexed rectangle — a conservative superset of the bounding box of
// the object's live readings at the cut (see readTable.support).
type Candidate struct {
	ID      string
	Support geom.Rect
}

// SupportCandidates returns every mobile object whose support
// rectangle intersects region at the cut, sorted by ID. This is the
// region-query pre-filter: an object NOT returned is guaranteed to
// have no reading rectangle intersecting region, so support-gated
// aggregate queries (occupancy heatmaps, ObjectsInRegion) can skip it
// without changing their result. Objects returned are candidates only
// — the caller still gates on the live (TTL-filtered) support. The
// search runs lock-free on the frozen per-shard support R-trees; cost
// is O(log n + hits) per shard rather than O(all objects).
func (s *Snapshot) SupportCandidates(region geom.Rect) []Candidate {
	var out []Candidate
	for i := range s.shards {
		s.shards[i].table.support.SearchIntersectFunc(region, func(r geom.Rect, id string) bool {
			out = append(out, Candidate{ID: id, Support: r})
			return true
		})
	}
	// An object's rows live in exactly one shard at any cut, so IDs
	// are unique; sort for a deterministic fan-out and merge order.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
