package spatialdb

import (
	"reflect"
	"testing"
	"time"

	"middlewhere/internal/model"
)

func TestExportImportRoundTrip(t *testing.T) {
	src := multiFloorDB(t, 2)
	dst := multiFloorDB(t, 2)
	for _, db := range []*DB{src, dst} {
		if err := db.RegisterSensor("ubi-1", longSpec()); err != nil {
			t.Fatal(err)
		}
	}
	at := time.Now()
	for i := 0; i < 3; i++ {
		if err := src.InsertReading(floorReading("ubi-1", "alice", 1, float64(10+i), 20, at.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}

	rows, epoch, ok := src.ExportObject("alice")
	if !ok || len(rows) != 3 {
		t.Fatalf("ExportObject = %d rows, ok=%v", len(rows), ok)
	}
	if epoch != src.ReadingEpoch("alice") {
		t.Errorf("exported epoch %d != ReadingEpoch %d", epoch, src.ReadingEpoch("alice"))
	}

	if !dst.ImportObject("alice", rows, epoch) {
		t.Fatal("first import should apply")
	}
	got := dst.ReadingsFor("alice", at)
	want := src.ReadingsFor("alice", at)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("imported rows differ:\n got %+v\nwant %+v", got, want)
	}
	// Epoch monotonicity across the handoff: the destination's epoch is
	// strictly greater than any value the source handed out.
	if dst.ReadingEpoch("alice") != epoch+1 {
		t.Errorf("dst epoch = %d, want %d", dst.ReadingEpoch("alice"), epoch+1)
	}
	if key, ok := dst.ObjectShardKey("alice"); !ok || key != "CS/Floor1" {
		t.Errorf("imported object shard = %q, ok=%v", key, ok)
	}
}

func TestImportReplayNeverDoubleApplies(t *testing.T) {
	src := multiFloorDB(t, 1)
	dst := multiFloorDB(t, 1)
	for _, db := range []*DB{src, dst} {
		if err := db.RegisterSensor("ubi-1", longSpec()); err != nil {
			t.Fatal(err)
		}
	}
	at := time.Now()
	if err := src.InsertReading(floorReading("ubi-1", "bob", 1, 5, 5, at)); err != nil {
		t.Fatal(err)
	}
	rows, epoch, _ := src.ExportObject("bob")

	if !dst.ImportObject("bob", rows, epoch) {
		t.Fatal("first import should apply")
	}
	epochAfter := dst.ReadingEpoch("bob")

	// A replayed prepare (lost ack, retried) must be a no-op.
	for i := 0; i < 3; i++ {
		if dst.ImportObject("bob", rows, epoch) {
			t.Fatal("replayed import must not re-apply")
		}
	}
	if got := dst.ReadingEpoch("bob"); got != epochAfter {
		t.Errorf("replay moved epoch %d -> %d", epochAfter, got)
	}
	if got := len(dst.ReadingsFor("bob", at)); got != 1 {
		t.Errorf("replay duplicated rows: %d", got)
	}

	// Local progress past the handoff also shields against stale
	// replays: new ingest bumps the epoch, the old payload stays dead.
	if err := dst.InsertReading(floorReading("ubi-1", "bob", 1, 6, 6, at.Add(time.Second))); err != nil {
		t.Fatal(err)
	}
	if dst.ImportObject("bob", rows, epoch) {
		t.Error("stale import applied over newer local state")
	}
	if got := len(dst.ReadingsFor("bob", at)); got != 2 {
		t.Errorf("rows after stale replay = %d, want 2", got)
	}
}

// TestImportMergesDegradedRows covers the degraded-fallback handoff:
// a daemon that stored rows locally while the owner was down later
// hands them over at a lower epoch than the owner's — the merge must
// keep both row sets and keep the epoch monotonic.
func TestImportMergesDegradedRows(t *testing.T) {
	owner := multiFloorDB(t, 1)
	if err := owner.RegisterSensor("ubi-1", longSpec()); err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	// The owner already holds rows at a high epoch.
	for i := 0; i < 5; i++ {
		if err := owner.InsertReading(floorReading("ubi-1", "dave", 1, float64(i), 1, at.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	highEpoch := owner.ReadingEpoch("dave")

	// A degraded peer accumulated different rows at a low epoch.
	degraded := []model.Reading{
		floorReading("ubi-1", "dave", 1, 50, 1, at.Add(10*time.Second)),
		floorReading("ubi-1", "dave", 1, 51, 1, at.Add(11*time.Second)),
	}
	if !owner.ImportObject("dave", degraded, 2) {
		t.Fatal("low-epoch handoff with fresh rows must apply")
	}
	rows := owner.ReadingsFor("dave", at)
	if len(rows) != 7 {
		t.Errorf("merged rows = %d, want 7 (no clobber, no dup)", len(rows))
	}
	if e := owner.ReadingEpoch("dave"); e <= highEpoch {
		t.Errorf("epoch regressed: %d -> %d", highEpoch, e)
	}
}

func TestDropObjectCommitsMigration(t *testing.T) {
	db := multiFloorDB(t, 1)
	if err := db.RegisterSensor("ubi-1", longSpec()); err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	if err := db.InsertReading(floorReading("ubi-1", "carol", 1, 1, 1, at)); err != nil {
		t.Fatal(err)
	}
	epoch := db.ReadingEpoch("carol")
	if db.DropObject("carol", epoch+1) {
		t.Fatal("drop with a stale epoch must refuse — unacked rows would be lost")
	}
	if !db.DropObject("carol", epoch) {
		t.Fatal("DropObject should report presence")
	}
	if db.DropObject("carol", epoch) {
		t.Error("second drop should be a no-op")
	}
	if rows := db.ReadingsFor("carol", at); len(rows) != 0 {
		t.Errorf("rows survived drop: %+v", rows)
	}
	if _, ok := db.ObjectShardKey("carol"); ok {
		t.Error("residence survived drop")
	}
	if e := db.ReadingEpoch("carol"); e != 0 {
		t.Errorf("epoch survived drop: %d", e)
	}
	// The object can come back through a later import (migrated back).
	back := []model.Reading{floorReading("ubi-1", "carol", 1, 2, 2, at)}
	if !db.ImportObject("carol", back, 7) {
		t.Fatal("re-import after drop should apply")
	}
	if e := db.ReadingEpoch("carol"); e != 8 {
		t.Errorf("re-import epoch = %d, want 8", e)
	}
}
