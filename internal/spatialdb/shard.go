package spatialdb

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/obs"
	"middlewhere/internal/rtree"
)

// Shard-layer metrics (per-shard counters are created with the shard;
// see newShard).
var (
	mShards     = obs.Default().Gauge("spatialdb_shards")
	mMigrations = obs.Default().Counter("spatialdb_shard_migrations_total")
	mSnapshots  = obs.Default().Counter("spatialdb_snapshots_total")
	mSnapClones = obs.Default().Counter("spatialdb_snapshot_clones_total")
	mSnapAgeUs  = obs.Default().Gauge("spatialdb_snapshot_age_us")
	mFedImports = obs.Default().Counter("spatialdb_fed_imports_total")
	mFedDrops   = obs.Default().Counter("spatialdb_fed_drops_total")

	// Snapshot-pool metrics (see Snapshot/Close in snapshot.go). live
	// counts open user handles: every pooled or fresh Snapshot return
	// adds one, every first Close on a handle removes one — so a steady
	// state of zero proves no caller leaks cuts.
	mSnapPoolHits     = obs.Default().Counter("spatialdb_snapshot_pool_hits")
	mSnapPoolRecycled = obs.Default().Counter("spatialdb_snapshot_pool_recycled")
	mSnapPoolLive     = obs.Default().Gauge("spatialdb_snapshot_pool_live")
)

// rootShardKey is the shard for locations whose GLOB has no symbolic
// path components (a bare coordinate in the universe frame).
const rootShardKey = "(root)"

// ShardMetricName returns the registry name of a per-shard metric: the
// base name with a Prometheus-style shard label, e.g.
//
//	spatialdb_shard_inserts_total{shard="CS/Floor3"}
//
// The obs registry is flat, so the label is part of the name; the
// /metrics exposition is still valid Prometheus text format.
func ShardMetricName(base, shardKey string) string {
	return base + `{shard="` + shardKey + `"}`
}

// shardKeyForGLOB maps a GLOB to its shard: the top-two symbolic path
// components ("CS/Floor3/NetLab" → "CS/Floor3"). Buildings partition
// into floors, floors own their rooms, and GLOB prefixes are stable —
// so the key never changes for a fixed location, and range queries
// against a floor stay within one shard (unlike hash sharding).
func shardKeyForGLOB(g glob.GLOB) string {
	switch len(g.Path) {
	case 0:
		return rootShardKey
	case 1:
		return g.Path[0]
	default:
		return g.Path[0] + "/" + g.Path[1]
	}
}

// shardKeyForID maps an object's GLOB string to its shard without
// parsing: the first two '/'-separated symbolic segments (a coordinate
// component, starting with '(', ends the path).
func shardKeyForID(id string) string {
	key := ""
	rest := id
	for seg := 0; seg < 2 && rest != ""; seg++ {
		part := rest
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			part, rest = rest[:j], rest[j+1:]
		} else {
			rest = ""
		}
		if part == "" || part[0] == '(' {
			break
		}
		if key == "" {
			key = part
		} else {
			key += "/" + part
		}
	}
	if key == "" {
		return rootShardKey
	}
	return key
}

// readTable is one shard's reading storage (Table 2 rows plus the
// per-object epoch counters). Tables are copy-on-write: Snapshot marks
// the current table frozen, and the next writer clones the maps before
// mutating (mutableTable), so a frozen table is immutable forever.
// Row slices are shared between a table and its clones; writers may
// append in place (appends land past every frozen reader's length) but
// must never overwrite or re-slice a row slice they do not own — owned
// tracks the slices allocated since this table instance was created.
type readTable struct {
	rows   map[string][]model.Reading
	epochs map[string]uint64
	// owned marks row slices whose backing array was allocated for
	// this table instance: those may be trimmed in place. Slices
	// inherited from a cloned (frozen) table must be replaced, not
	// rewritten.
	owned map[string]bool

	// support indexes, per object, a rectangle guaranteed to contain
	// the bounding box of the object's live (TTL-filtered) readings —
	// the candidate pre-filter for region-shaped queries (DESIGN.md
	// §17). supRect mirrors the indexed rectangle so maintenance can
	// Delete the exact prior entry. The rect is a conservative
	// superset: inserts only union it wider (growSupport); prune,
	// expiry, migration, and federation recompute it exactly
	// (resetSupport). The tree rides the table's copy-on-write
	// lifecycle via rtree.Clone, so a frozen snapshot's tree is never
	// structurally mutated.
	support *rtree.Tree
	supRect map[string]geom.Rect
}

func newReadTable() *readTable {
	return &readTable{
		rows:    make(map[string][]model.Reading),
		epochs:  make(map[string]uint64),
		owned:   make(map[string]bool),
		support: rtree.New(),
		supRect: make(map[string]geom.Rect),
	}
}

// growSupport widens the object's indexed support rectangle to cover r.
// Caller holds the shard's readMu exclusively on a mutable table. The
// steady-state case — a reading inside the already-indexed box — is a
// map lookup and a containment check, with no tree mutation at all.
func (t *readTable) growSupport(id string, r geom.Rect) {
	cur, ok := t.supRect[id]
	if !ok {
		t.support.Insert(r, id)
		t.supRect[id] = r
		return
	}
	if cur.ContainsRect(r) {
		return
	}
	u := cur.Union(r)
	t.support.Delete(cur, id)
	t.support.Insert(u, id)
	t.supRect[id] = u
}

// resetSupport recomputes the object's support entry exactly from rows
// (the bounding box of every stored row's region); empty rows remove
// the entry. Caller holds the shard's readMu exclusively on a mutable
// table.
func (t *readTable) resetSupport(id string, rows []model.Reading) {
	cur, had := t.supRect[id]
	if len(rows) == 0 {
		if had {
			t.support.Delete(cur, id)
			delete(t.supRect, id)
		}
		return
	}
	u := rows[0].Region
	for _, r := range rows[1:] {
		u = u.Union(r.Region)
	}
	if had {
		if u.Eq(cur) {
			return
		}
		t.support.Delete(cur, id)
	}
	t.support.Insert(u, id)
	t.supRect[id] = u
}

// shard is one floor's slice of the database: its own object table and
// R-tree, its own reading table, and its own locks — so ingest and
// expiry on independent floors never contend, and each R-tree stays
// bounded by one floor's population.
type shard struct {
	key string

	// Object table + R-tree. objFrozen marks the objects map as
	// visible to a lock-free reader view; the next writer clones it
	// first (the R-tree copy-on-writes itself via rtree.Clone).
	objMu     sync.RWMutex
	objects   map[string]*Object
	objIdx    *rtree.Tree
	objFrozen atomic.Bool

	// Reading table, copy-on-write (see readTable). readFrozen marks
	// the current table as captured by a snapshot. The pointer is
	// atomic so a snapshot capture can read it without readMu — writers
	// still hold readMu exclusively around every Store.
	readMu     sync.RWMutex
	table      atomic.Pointer[readTable]
	readFrozen atomic.Bool
	// writeEpoch counts reading-table mutation batches on this shard —
	// the shard-level staleness stamp carried by snapshots and surfaced
	// in ShardStats.
	writeEpoch atomic.Uint64

	// Cut-protocol state (cut.go): pending counts mutation brackets in
	// flight on this shard; cutSeq advances at the end of every bracket
	// that actually mutated the table. A snapshot capture of this shard
	// is valid iff pending stayed 0 and cutSeq stayed put across it.
	pending atomic.Int32
	cutSeq  atomic.Uint64

	// inserts counts readings stored here (mirrors the per-shard
	// counter for ShardStats without a registry read).
	inserts atomic.Uint64

	mInserts    *obs.Counter
	mRTreeNodes *obs.Gauge
}

func newShard(key string) *shard {
	sh := &shard{
		key:         key,
		objects:     make(map[string]*Object),
		objIdx:      rtree.New(),
		mInserts:    obs.Default().Counter(ShardMetricName("spatialdb_shard_inserts_total", key)),
		mRTreeNodes: obs.Default().Gauge(ShardMetricName("spatialdb_shard_rtree_nodes", key)),
	}
	sh.table.Store(newReadTable())
	return sh
}

// mutableTable returns a reading table the caller may mutate. Caller
// holds readMu exclusively. If the current table is frozen in a
// snapshot, it is cloned first (shallow: row slices are shared, see
// readTable).
func (sh *shard) mutableTable() *readTable {
	if !sh.readFrozen.Load() {
		return sh.table.Load()
	}
	old := sh.table.Load()
	nt := &readTable{
		rows:   make(map[string][]model.Reading, len(old.rows)),
		epochs: make(map[string]uint64, len(old.epochs)),
		owned:  make(map[string]bool),
		// O(1) copy-on-write: the clone shares nodes with the frozen
		// tree and deep-copies only on its first actual mutation.
		support: old.support.Clone(),
		supRect: make(map[string]geom.Rect, len(old.supRect)),
	}
	for k, v := range old.rows {
		nt.rows[k] = v
	}
	for k, v := range old.epochs {
		nt.epochs[k] = v
	}
	for k, v := range old.supRect {
		nt.supRect[k] = v
	}
	sh.table.Store(nt)
	sh.readFrozen.Store(false)
	mSnapClones.Inc()
	return nt
}

// mutableObjects makes the object map safe to mutate. Caller holds
// objMu exclusively. (The R-tree copy-on-writes independently: it was
// marked shared by Clone and materializes on its next mutation.)
func (sh *shard) mutableObjects() {
	if !sh.objFrozen.Load() {
		return
	}
	m := make(map[string]*Object, len(sh.objects))
	for k, v := range sh.objects {
		m[k] = v
	}
	sh.objects = m
	sh.objFrozen.Store(false)
}

// objView is a lock-free read view of one shard's object table: the
// frozen map and a copy-on-write clone of the R-tree. Searches run
// without holding the shard lock; done() folds the clone's node visits
// back into the live index so the rtree_node_visits gauge keeps
// counting query work.
type objView struct {
	sh      *shard
	objects map[string]*Object
	idx     *rtree.Tree
}

func (v objView) done() {
	if n := v.idx.Visits(); n > 0 {
		v.sh.objIdx.AddVisits(n)
	}
}

// objectViews captures a consistent per-shard view of every object
// table. The capture itself is a brief read-lock per shard; searching
// and merging happen lock-free afterwards.
func (db *DB) objectViews() []objView {
	shards := db.allShards()
	views := make([]objView, len(shards))
	for i, sh := range shards {
		sh.objMu.RLock()
		views[i] = objView{sh: sh, objects: sh.objects, idx: sh.objIdx.Clone()}
		sh.objFrozen.Store(true)
		sh.objMu.RUnlock()
	}
	return views
}

// shardFor returns the shard for a key if it exists.
func (db *DB) shardFor(key string) (*shard, bool) {
	db.shardMu.RLock()
	sh, ok := db.shards[key]
	db.shardMu.RUnlock()
	return sh, ok
}

// ensureShard returns the shard for a key, creating it on first use.
func (db *DB) ensureShard(key string) *shard {
	if sh, ok := db.shardFor(key); ok {
		return sh
	}
	db.shardMu.Lock()
	defer db.shardMu.Unlock()
	if sh, ok := db.shards[key]; ok {
		return sh
	}
	sh := newShard(key)
	db.shards[key] = sh
	// Copy-on-write for the ordered slice: allShards hands the current
	// slice to lock-free iteration, so it is never appended in place.
	order := make([]*shard, 0, len(db.order)+1)
	order = append(order, db.order...)
	order = append(order, sh)
	sort.Slice(order, func(i, j int) bool { return order[i].key < order[j].key })
	db.order = order
	mShards.Set(float64(len(db.shards)))
	return sh
}

// allShards returns the shards sorted by key. The slice is immutable
// (replaced wholesale on shard creation), so callers iterate without a
// lock.
func (db *DB) allShards() []*shard {
	db.shardMu.RLock()
	order := db.order
	db.shardMu.RUnlock()
	return order
}

// fanShards runs fn(0..n-1) through the installed fan-out runner when
// one is wired and there is real fan-out to gain, serially otherwise.
// Index-addressed result slots keep the merge deterministic either
// way.
func (db *DB) fanShards(n int, fn func(int)) {
	if n > 1 {
		if fan := db.fanout.Load(); fan != nil {
			(*fan)(n, fn)
			return
		}
	}
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// SetFanout installs a parallel runner for cross-shard queries; the
// Location Service wires its bounded worker pool in. run must execute
// fn(0..n-1), possibly concurrently, and return after all calls
// complete. A nil run restores serial evaluation.
func (db *DB) SetFanout(run func(n int, fn func(int))) {
	if run == nil {
		db.fanout.Store(nil)
		return
	}
	db.fanout.Store(&run)
}

// ShardStat describes one shard for stats surfaces (mwctl stats).
type ShardStat struct {
	// Key is the shard's GLOB prefix (top-two path components).
	Key string `json:"key"`
	// Objects is the number of object-table rows homed here.
	Objects int `json:"objects"`
	// MobileObjects is the number of objects with stored readings.
	MobileObjects int `json:"mobile_objects"`
	// Readings is the total number of stored reading rows.
	Readings int `json:"readings"`
	// RTreeNodes is the object R-tree's entry count.
	RTreeNodes int `json:"rtree_nodes"`
	// SupportRects is the reading-support R-tree's entry count (one
	// per mobile object homed here) — the candidate pre-filter index.
	SupportRects int `json:"support_rects"`
	// Epoch is the shard's write epoch (mutation batches applied).
	Epoch uint64 `json:"epoch"`
	// Inserts counts readings stored since the database was created.
	Inserts uint64 `json:"inserts"`
}

// ShardStats reports per-shard table sizes and write epochs, sorted by
// shard key. It also refreshes the snapshot-age gauge.
func (db *DB) ShardStats() []ShardStat {
	db.refreshSnapshotAge()
	shards := db.allShards()
	out := make([]ShardStat, 0, len(shards))
	for _, sh := range shards {
		st := ShardStat{
			Key:     sh.key,
			Epoch:   sh.writeEpoch.Load(),
			Inserts: sh.inserts.Load(),
		}
		sh.objMu.RLock()
		st.Objects = len(sh.objects)
		st.RTreeNodes = sh.objIdx.Len()
		sh.objMu.RUnlock()
		sh.readMu.RLock()
		t := sh.table.Load()
		st.MobileObjects = len(t.rows)
		st.SupportRects = t.support.Len()
		for _, rows := range t.rows {
			st.Readings += len(rows)
		}
		sh.readMu.RUnlock()
		out = append(out, st)
	}
	return out
}

// refreshSnapshotAge sets the snapshot-age gauge to the time since the
// last Snapshot call (since New when none has been taken).
func (db *DB) refreshSnapshotAge() {
	mSnapAgeUs.Set(float64(time.Since(time.UnixMicro(db.lastSnap.Load())).Microseconds()))
}
