package spatialdb

import (
	"testing"
	"time"

	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

// BenchmarkInsertReadingAtCap measures the steady-state ingest cost
// for an object already holding maxReadingsPerObject rows, where every
// insert trims the oldest row. The ring-buffer trim makes this an O(1)
// amortized reslice-and-append (one array re-base per ~cap inserts)
// instead of the old copy-everything-every-insert behavior.
func BenchmarkInsertReadingAtCap(b *testing.B) {
	tb := testing.TB(b)
	db := multiFloorDB(tb, 1)
	spec := longSpec()
	if err := db.RegisterSensor("s1", spec); err != nil {
		b.Fatal(err)
	}
	at := t0
	mk := func(i int) model.Reading {
		return model.Reading{
			SensorID:  "s1",
			MObjectID: "cap",
			Location: glob.CoordinatePoint(glob.MustParse("CS/Floor1"),
				geom.Pt(float64(i%400), 10)),
			Time: at.Add(time.Duration(i) * time.Millisecond),
		}
	}
	for i := 0; i < maxReadingsPerObject; i++ {
		if err := db.InsertReading(mk(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.InsertReading(mk(maxReadingsPerObject + i)); err != nil {
			b.Fatal(err)
		}
	}
}
