package spatialdb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"middlewhere/internal/coords"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
)

var t0 = time.Date(2026, 7, 5, 11, 52, 35, 0, time.UTC)

// testDB builds a DB over a simple building: root frame "CS", floor
// frame "CS/Floor3" at the building origin, and a universe of
// 500x100 (the paper's floor polygon).
func testDB(t *testing.T) *DB {
	t.Helper()
	tr := coords.NewTree()
	if err := tr.AddRoot("CS"); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddFrame("CS/Floor3", "CS", coords.Identity); err != nil {
		t.Fatal(err)
	}
	// Room 3105 has its own frame with origin at its corner.
	if err := tr.AddFrame("CS/Floor3/3105", "CS/Floor3",
		coords.Transform{Origin: geom.Pt(330, 0), Scale: 1}); err != nil {
		t.Fatal(err)
	}
	return New(tr, geom.R(0, 0, 500, 100))
}

func roomObject(id string, pts ...geom.Point) Object {
	return Object{
		GLOB:        glob.MustParse("CS/Floor3/" + id),
		Type:        "Room",
		Kind:        glob.KindPolygon,
		LocalPoints: pts,
	}
}

// paperFloor loads the rows of Table 1.
func paperFloor(t *testing.T, db *DB) {
	t.Helper()
	objs := []Object{
		{
			GLOB: glob.MustParse("CS/Floor3"), Type: "Floor", Kind: glob.KindPolygon,
			LocalPoints: []geom.Point{{X: 0, Y: 0}, {X: 500, Y: 0}, {X: 500, Y: 100}, {X: 0, Y: 100}},
		},
		roomObject("3105", geom.Pt(330, 0), geom.Pt(350, 0), geom.Pt(350, 30), geom.Pt(330, 30)),
		roomObject("NetLab", geom.Pt(360, 0), geom.Pt(380, 0), geom.Pt(380, 30), geom.Pt(360, 30)),
		{
			GLOB: glob.MustParse("CS/Floor3/LabCorridor"), Type: "Corridor", Kind: glob.KindPolygon,
			LocalPoints: []geom.Point{{X: 310, Y: 0}, {X: 330, Y: 0}, {X: 330, Y: 30}, {X: 310, Y: 30}},
		},
	}
	objs[1].Properties = map[string]string{"power-outlets": "yes", "bluetooth": "high"}
	for _, o := range objs {
		if err := db.InsertObject(o); err != nil {
			t.Fatal(err)
		}
	}
}

func ubiSpec() model.SensorSpec {
	return model.UbisenseSpec(0.9)
}

func TestInsertAndGetObject(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	o, err := db.GetObject("CS/Floor3/3105")
	if err != nil {
		t.Fatal(err)
	}
	if o.Type != "Room" || o.Kind != glob.KindPolygon {
		t.Errorf("object = %+v", o)
	}
	if !o.Bounds.Eq(geom.R(330, 0, 350, 30)) {
		t.Errorf("bounds = %v", o.Bounds)
	}
	if o.Properties["bluetooth"] != "high" {
		t.Errorf("properties = %v", o.Properties)
	}
	if _, err := db.GetObject("CS/Floor3/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing object err = %v", err)
	}
}

func TestInsertObjectErrors(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	// Duplicate.
	err := db.InsertObject(roomObject("3105", geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1)))
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	// No points.
	err = db.InsertObject(Object{GLOB: glob.MustParse("CS/Floor3/empty"), Kind: glob.KindPolygon})
	if !errors.Is(err, ErrBadGeometry) {
		t.Errorf("no-points err = %v", err)
	}
	// Empty GLOB.
	err = db.InsertObject(Object{Kind: glob.KindPoint, LocalPoints: []geom.Point{{}}})
	if !errors.Is(err, ErrBadGeometry) {
		t.Errorf("empty GLOB err = %v", err)
	}
	// Unknown frame prefix.
	err = db.InsertObject(Object{
		GLOB: glob.MustParse("ZZ/1/room"), Kind: glob.KindPolygon,
		LocalPoints: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}},
	})
	if err == nil {
		t.Error("unknown frame should fail")
	}
}

func TestObjectInsertCopiesInput(t *testing.T) {
	db := testDB(t)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}}
	props := map[string]string{"a": "1"}
	o := Object{GLOB: glob.MustParse("CS/Floor3/r"), Type: "Room", Kind: glob.KindPolygon,
		LocalPoints: pts, Properties: props}
	if err := db.InsertObject(o); err != nil {
		t.Fatal(err)
	}
	pts[0].X = 999
	props["a"] = "mutated"
	got, _ := db.GetObject("CS/Floor3/r")
	if got.LocalPoints[0].X != 0 || got.Properties["a"] != "1" {
		t.Error("InsertObject aliased caller data")
	}
}

func TestDeleteObject(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.DeleteObject("CS/Floor3/3105"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetObject("CS/Floor3/3105"); !errors.Is(err, ErrNotFound) {
		t.Error("object still present")
	}
	if err := db.DeleteObject("CS/Floor3/3105"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	// Index no longer returns it.
	got := db.IntersectingObjects(geom.R(330, 0, 350, 30), ObjectFilter{Type: "Room"})
	for _, o := range got {
		if o.ID() == "CS/Floor3/3105" {
			t.Error("deleted object still indexed")
		}
	}
}

func TestSpatialQueries(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	// Intersecting the lab corridor area.
	got := db.IntersectingObjects(geom.R(315, 5, 335, 25), ObjectFilter{})
	ids := idsOf(got)
	// Floor + corridor + 3105 (which starts at x=330).
	if len(ids) != 3 || !has(ids, "CS/Floor3/LabCorridor") || !has(ids, "CS/Floor3/3105") {
		t.Errorf("intersecting = %v", ids)
	}
	// Filter by type excludes the floor.
	got = db.IntersectingObjects(geom.R(315, 5, 335, 25), ObjectFilter{Type: "Room"})
	if len(got) != 1 || got[0].ID() != "CS/Floor3/3105" {
		t.Errorf("rooms = %v", idsOf(got))
	}
	// Contained within the east wing (x >= 300).
	got = db.ContainedObjects(geom.R(300, 0, 400, 50), ObjectFilter{})
	ids = idsOf(got)
	if len(ids) != 3 || has(ids, "CS/Floor3") {
		t.Errorf("contained = %v", ids)
	}
	// Point query: deepest object first.
	got = db.ObjectsAt(geom.Pt(340, 10), ObjectFilter{})
	if len(got) != 2 || got[0].ID() != "CS/Floor3/3105" || got[1].ID() != "CS/Floor3" {
		t.Errorf("at = %v", idsOf(got))
	}
	// Prefix filter.
	got = db.IntersectingObjects(geom.R(0, 0, 500, 100), ObjectFilter{
		Prefix: glob.MustParse("CS/Floor3"), Type: "Room"})
	if len(got) != 2 {
		t.Errorf("prefixed rooms = %v", idsOf(got))
	}
}

func TestNearestWithProperties(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	// "Where is the nearest region that has power outlets and high
	// Bluetooth signal?" (§5.1)
	got := db.Nearest(geom.Pt(0, 0), 1, ObjectFilter{
		Properties: map[string]string{"power-outlets": "yes", "bluetooth": "high"},
	})
	if len(got) != 1 || got[0].ID() != "CS/Floor3/3105" {
		t.Errorf("nearest = %v", idsOf(got))
	}
	// Nearest without filter returns k objects ordered by distance.
	got = db.Nearest(geom.Pt(370, 10), 2, ObjectFilter{Type: "Room"})
	if len(got) != 2 || got[0].ID() != "CS/Floor3/NetLab" {
		t.Errorf("nearest rooms = %v", idsOf(got))
	}
	// Unsatisfiable property.
	got = db.Nearest(geom.Pt(0, 0), 3, ObjectFilter{
		Properties: map[string]string{"pool": "olympic"}})
	if len(got) != 0 {
		t.Errorf("impossible filter returned %v", idsOf(got))
	}
}

func TestResolveGLOB(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	// Symbolic.
	r, err := db.ResolveGLOB(glob.MustParse("CS/Floor3/3105"))
	if err != nil || !r.Eq(geom.R(330, 0, 350, 30)) {
		t.Errorf("symbolic resolve = %v, %v", r, err)
	}
	// Coordinate in the floor frame.
	r, err = db.ResolveGLOB(glob.MustParse("CS/Floor3/(10,20)"))
	if err != nil || !r.Eq(geom.R(10, 20, 10, 20)) {
		t.Errorf("coordinate resolve = %v, %v", r, err)
	}
	// Coordinate in the room frame translates to building coordinates.
	r, err = db.ResolveGLOB(glob.MustParse("CS/Floor3/3105/(5,22)"))
	if err != nil || !r.Eq(geom.R(335, 22, 335, 22)) {
		t.Errorf("room-frame resolve = %v, %v", r, err)
	}
	// Unknown symbolic name.
	if _, err := db.ResolveGLOB(glob.MustParse("CS/Floor3/void")); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown symbolic err = %v", err)
	}
	// Empty.
	if _, err := db.ResolveGLOB(glob.GLOB{}); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("empty err = %v", err)
	}
}

func TestSensorRegistryAndSpec(t *testing.T) {
	db := testDB(t)
	if err := db.RegisterSensor("Ubi-18", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	spec, err := db.SensorSpec("Ubi-18")
	if err != nil || spec.Type != model.TypeUbisense {
		t.Errorf("spec = %+v, %v", spec, err)
	}
	if _, err := db.SensorSpec("zz"); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("unknown sensor err = %v", err)
	}
	if err := db.RegisterSensor("", ubiSpec()); err == nil {
		t.Error("empty id should fail")
	}
	bad := ubiSpec()
	bad.TTL = 0
	if err := db.RegisterSensor("x", bad); err == nil {
		t.Error("invalid spec should fail")
	}
	if got := db.Sensors(); len(got) != 1 || got[0] != "Ubi-18" {
		t.Errorf("Sensors = %v", got)
	}
}

func TestInsertReadingResolvesRegion(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("Ubi-18", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	// Coordinate reading in the room frame with an explicit radius.
	r := model.Reading{
		SensorID:        "Ubi-18",
		MObjectID:       "ralph",
		Location:        glob.MustParse("CS/Floor3/3105/(5,22)"),
		DetectionRadius: 0.5,
		Time:            t0,
	}
	if err := db.InsertReading(r); err != nil {
		t.Fatal(err)
	}
	rows := db.ReadingsFor("ralph", t0)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if !rows[0].Region.Eq(geom.R(334.5, 21.5, 335.5, 22.5)) {
		t.Errorf("region = %v", rows[0].Region)
	}
	if rows[0].SensorType != model.TypeUbisense {
		t.Errorf("sensor type not defaulted: %q", rows[0].SensorType)
	}
	// Symbolic reading resolves to the room's MBR.
	card := model.CardReaderSpec(glob.MustParse("CS/Floor3/NetLab"))
	if err := db.RegisterSensor("card-1", card); err != nil {
		t.Fatal(err)
	}
	sym := model.Reading{
		SensorID:  "card-1",
		MObjectID: "tom",
		Location:  glob.MustParse("CS/Floor3/NetLab"),
		Time:      t0,
	}
	if err := db.InsertReading(sym); err != nil {
		t.Fatal(err)
	}
	rows = db.ReadingsFor("tom", t0)
	if len(rows) != 1 || !rows[0].Region.Eq(geom.R(360, 0, 380, 30)) {
		t.Errorf("symbolic reading region = %v", rows)
	}
}

func TestInsertReadingErrors(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	// Unregistered sensor.
	err := db.InsertReading(model.Reading{SensorID: "zz", MObjectID: "p",
		Location: glob.MustParse("CS/Floor3/(1,1)"), Time: t0})
	if !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("err = %v", err)
	}
	if err := db.RegisterSensor("s", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	// Missing mobject.
	err = db.InsertReading(model.Reading{SensorID: "s",
		Location: glob.MustParse("CS/Floor3/(1,1)"), Time: t0})
	if err == nil {
		t.Error("missing mobject should fail")
	}
	// Missing location and region.
	err = db.InsertReading(model.Reading{SensorID: "s", MObjectID: "p", Time: t0})
	if !errors.Is(err, ErrBadGeometry) {
		t.Errorf("missing location err = %v", err)
	}
	// Unknown symbolic location.
	err = db.InsertReading(model.Reading{SensorID: "s", MObjectID: "p",
		Location: glob.MustParse("CS/Floor3/void"), Time: t0})
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown location err = %v", err)
	}
}

func TestReadingTTLAndExpiry(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("Ubi-18", ubiSpec()); err != nil { // TTL 3s
		t.Fatal(err)
	}
	r := model.Reading{SensorID: "Ubi-18", MObjectID: "p",
		Location: glob.MustParse("CS/Floor3/(10,10)"), Time: t0}
	if err := db.InsertReading(r); err != nil {
		t.Fatal(err)
	}
	if rows := db.ReadingsFor("p", t0.Add(2*time.Second)); len(rows) != 1 {
		t.Errorf("fresh rows = %v", rows)
	}
	if rows := db.ReadingsFor("p", t0.Add(5*time.Second)); len(rows) != 0 {
		t.Errorf("expired rows = %v", rows)
	}
	// The expired reading was pruned; the object is gone.
	if got := db.MobileObjects(); len(got) != 0 {
		t.Errorf("objects after expiry = %v", got)
	}
}

func TestExpireReadingsWithMatcher(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	long := model.BiometricLongSpec(glob.MustParse("CS/Floor3/NetLab"), 15*time.Minute, 0.3)
	if err := db.RegisterSensor("bio-1", long); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(model.Reading{SensorID: "bio-1", MObjectID: "tom",
		Location: glob.MustParse("CS/Floor3/NetLab"), Time: t0}); err != nil {
		t.Fatal(err)
	}
	// Manual logout: expire all readings for tom from bio-1 (§6.3).
	db.ExpireReadings(t0, func(r model.Reading) bool {
		return r.MObjectID == "tom" && r.SensorID == "bio-1"
	})
	if rows := db.ReadingsFor("tom", t0); len(rows) != 0 {
		t.Errorf("rows after logout = %v", rows)
	}
}

func TestLatestPerSensor(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	spec := ubiSpec()
	spec.TTL = time.Minute
	if err := db.RegisterSensor("s1", spec); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterSensor("s2", spec); err != nil {
		t.Fatal(err)
	}
	mk := func(sensor string, x float64, at time.Time) model.Reading {
		return model.Reading{SensorID: sensor, MObjectID: "p",
			Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"), geom.Pt(x, 10)),
			Time:     at}
	}
	for _, r := range []model.Reading{
		mk("s1", 10, t0),
		mk("s1", 20, t0.Add(2*time.Second)),
		mk("s2", 30, t0.Add(time.Second)),
	} {
		if err := db.InsertReading(r); err != nil {
			t.Fatal(err)
		}
	}
	latest := db.LatestPerSensor("p", t0.Add(3*time.Second))
	if len(latest) != 2 {
		t.Fatalf("latest = %v", latest)
	}
	if latest[0].SensorID != "s1" || latest[0].Region.Center().X != 20 {
		t.Errorf("s1 latest = %+v", latest[0])
	}
}

func TestMovementDetection(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	spec := ubiSpec()
	spec.TTL = time.Minute
	if err := db.RegisterSensor("s1", spec); err != nil {
		t.Fatal(err)
	}
	first := model.Reading{SensorID: "s1", MObjectID: "p",
		Location: glob.MustParse("CS/Floor3/(10,10)"), Time: t0}
	if err := db.InsertReading(first); err != nil {
		t.Fatal(err)
	}
	rows := db.ReadingsFor("p", t0)
	if rows[0].Moving {
		t.Error("first reading should not be moving")
	}
	second := model.Reading{SensorID: "s1", MObjectID: "p",
		Location: glob.MustParse("CS/Floor3/(15,10)"), Time: t0.Add(time.Second)}
	if err := db.InsertReading(second); err != nil {
		t.Fatal(err)
	}
	rows = db.ReadingsFor("p", t0.Add(time.Second))
	if len(rows) != 2 || !rows[1].Moving {
		t.Errorf("second reading should be moving: %+v", rows)
	}
	// Same position again: not moving.
	third := model.Reading{SensorID: "s1", MObjectID: "p",
		Location: glob.MustParse("CS/Floor3/(15,10)"), Time: t0.Add(2 * time.Second)}
	if err := db.InsertReading(third); err != nil {
		t.Fatal(err)
	}
	rows = db.ReadingsFor("p", t0.Add(2*time.Second))
	if rows[2].Moving {
		t.Error("stationary repeat flagged as moving")
	}
}

func TestTriggersFireOnInsert(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("s1", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []TriggerEvent
	record := func(ev TriggerEvent) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	}
	// Trigger on room 3105 for anyone.
	if err := db.AddTrigger("t-room", "", geom.R(330, 0, 350, 30), record); err != nil {
		t.Fatal(err)
	}
	// Trigger only for alice anywhere on the floor.
	if err := db.AddTrigger("t-alice", "alice", geom.R(0, 0, 500, 100), record); err != nil {
		t.Fatal(err)
	}
	// bob walks into 3105: only t-room fires.
	if err := db.InsertReading(model.Reading{SensorID: "s1", MObjectID: "bob",
		Location: glob.MustParse("CS/Floor3/3105/(5,5)"), Time: t0}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(events) != 1 || events[0].TriggerID != "t-room" || events[0].Reading.MObjectID != "bob" {
		t.Errorf("events = %+v", events)
	}
	events = nil
	mu.Unlock()
	// alice appears in the west wing: only t-alice fires.
	if err := db.InsertReading(model.Reading{SensorID: "s1", MObjectID: "alice",
		Location: glob.MustParse("CS/Floor3/(50,50)"), Time: t0}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(events) != 1 || events[0].TriggerID != "t-alice" {
		t.Errorf("events = %+v", events)
	}
	mu.Unlock()
}

func TestTriggerLifecycle(t *testing.T) {
	db := testDB(t)
	noop := func(TriggerEvent) {}
	region := geom.R(0, 0, 10, 10)
	if err := db.AddTrigger("t1", "", region, noop); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTrigger("t1", "", region, noop); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate trigger err = %v", err)
	}
	if db.TriggerCount() != 1 {
		t.Errorf("count = %d", db.TriggerCount())
	}
	if err := db.RemoveTrigger("t1"); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveTrigger("t1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("remove missing err = %v", err)
	}
	if err := db.AddTrigger("", "", region, noop); !errors.Is(err, ErrBadTrigger) {
		t.Errorf("empty id err = %v", err)
	}
	if err := db.AddTrigger("t2", "", geom.Rect{}, noop); !errors.Is(err, ErrBadTrigger) {
		t.Errorf("degenerate region err = %v", err)
	}
	if err := db.AddTrigger("t3", "", region, nil); !errors.Is(err, ErrBadTrigger) {
		t.Errorf("nil callback err = %v", err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	spec := ubiSpec()
	spec.TTL = time.Minute
	if err := db.RegisterSensor("s1", spec); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTrigger("t", "", geom.R(0, 0, 500, 100), func(TriggerEvent) {}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := model.Reading{
					SensorID:  "s1",
					MObjectID: fmt.Sprintf("p%d", w),
					Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"),
						geom.Pt(float64(i), float64(w*10))),
					Time: t0.Add(time.Duration(i) * time.Millisecond),
				}
				if err := db.InsertReading(r); err != nil {
					t.Error(err)
					return
				}
				db.ReadingsFor(r.MObjectID, t0.Add(time.Second))
				db.IntersectingObjects(geom.R(0, 0, 100, 100), ObjectFilter{})
			}
		}(w)
	}
	wg.Wait()
	if got := len(db.MobileObjects()); got != 4 {
		t.Errorf("mobile objects = %d", got)
	}
}

func TestDumpTables(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	if err := db.RegisterSensor("Ubi-18", ubiSpec()); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertReading(model.Reading{
		SensorID: "Ubi-18", MObjectID: "ralph-bat",
		Location:        glob.MustParse("CS/Floor3/3105/(5,22)"),
		DetectionRadius: 0.5, Time: t0,
	}); err != nil {
		t.Fatal(err)
	}
	objTable := db.DumpObjectTable()
	for _, want := range []string{"ObjectIdentifier", "3105", "NetLab", "LabCorridor", "(330,0)"} {
		if !strings.Contains(objTable, want) {
			t.Errorf("object table missing %q:\n%s", want, objTable)
		}
	}
	readTable := db.DumpReadingTable()
	for _, want := range []string{"Ubi-18", "ralph-bat", "(5,22)", "11:52:35"} {
		if !strings.Contains(readTable, want) {
			t.Errorf("reading table missing %q:\n%s", want, readTable)
		}
	}
	sensorTable := db.DumpSensorTable()
	for _, want := range []string{"SensorId", "Confidence", "Ubi-18", "3"} {
		if !strings.Contains(sensorTable, want) {
			t.Errorf("sensor table missing %q:\n%s", want, sensorTable)
		}
	}
}

func idsOf(objs []Object) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.ID()
	}
	return out
}

func has(ids []string, want string) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func TestReadingStorageBounded(t *testing.T) {
	db := testDB(t)
	paperFloor(t, db)
	spec := ubiSpec()
	spec.TTL = time.Hour // nothing expires during the test
	if err := db.RegisterSensor("s1", spec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		err := db.InsertReading(model.Reading{
			SensorID:  "s1",
			MObjectID: "hoarder",
			Location: glob.CoordinatePoint(glob.MustParse("CS/Floor3"),
				geom.Pt(float64(i%400), 10)),
			Time: t0.Add(time.Duration(i) * time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rows := db.ReadingsFor("hoarder", t0.Add(200*time.Second))
	if len(rows) > 64 {
		t.Errorf("stored %d rows, want <= 64", len(rows))
	}
	// The newest reading survived the pruning.
	last := rows[len(rows)-1]
	if !last.Time.Equal(t0.Add(199 * time.Second)) {
		t.Errorf("newest reading lost: %v", last.Time)
	}
}
