package spatialdb

import (
	"time"

	"middlewhere/internal/obs"
)

// The cut protocol (DESIGN.md §16): how Snapshot assembles a
// consistent, none-or-all view of every shard's reading table without
// a global lock on the ingest path.
//
// Every top-level reading-table mutation runs inside a *bracket*:
//
//	beginBatch(shards...)   // publish intent: pending++ on every
//	                        // target shard BEFORE mutating any
//	... mutate under each shard's readMu ...
//	endBatch(shards...)     // cutSeq++ then pending-- per shard
//
// A capture of one shard is valid only if the shard had no bracket in
// flight (pending == 0) and its cutSeq did not move across the
// capture. A whole cut is valid only after one *clean sweep*: a pass
// over the (re-read) shard list in which every shard verified against
// its captured cutSeq with pending == 0 and nothing was recaptured.
// That pair of counters is what makes cross-shard batches atomic
// without a global lock: a batch either still holds pending on some
// target shard when the sweep checks it (sweep fails), or it finished
// before every check — in which case it bumped cutSeq on ALL its
// targets, so any capture predating the batch mismatches and is
// retaken. Either way no clean sweep can mix pre-batch and post-batch
// captures.
//
// Sweeps are optimistic and can in principle keep losing races under
// heavy sustained ingest, so after snapSweepRounds unclean rounds the
// snapshot escalates: it closes cutGate, waits for in-flight brackets
// to drain, captures every shard stably, and reopens the gate. The
// Dekker-style double check in beginBatch (pending++ first, gate load
// second, back out if closed) guarantees the drain terminates: once
// the gate is closed, every new bracket observes it and parks, so
// pending counts only the brackets that were already admitted.
//
// Nested brackets — placeObject migrating rows out of a previous floor
// while the enclosing InsertReadings/ImportObject bracket is open —
// increment pending WITHOUT the gate check: checking the gate there
// would deadlock against a draining snapshot that is waiting for the
// enclosing bracket itself. Lock order: bracket (pending/cutGate) →
// migMu → shard.readMu.

// Cut-protocol metrics. spatialdb_cut_wait_us records time an ingest
// bracket spent parked at the cut gate — it observes nothing on the
// lock-free fast path, so a zero count is the proof that cuts did not
// block ingest.
var (
	mCutWaitUs      = obs.Default().Histogram("spatialdb_cut_wait_us")
	mCutRetries     = obs.Default().Counter("spatialdb_snapshot_capture_retries_total")
	mCutEscalations = obs.Default().Counter("spatialdb_snapshot_escalations_total")
)

// snapSweepRounds bounds the optimistic capture/verify rounds before
// Snapshot escalates to the gate drain. This is the documented retry
// bound: a cut costs at most snapSweepRounds O(shards) sweeps plus one
// drain.
const snapSweepRounds = 8

// beginBatch opens a top-level mutation bracket over the given shards.
// It publishes pending on every shard before the caller mutates any of
// them, so a concurrent cut can tell "batch in flight somewhere" from
// any one target shard. Blocks only while an escalated snapshot holds
// the cut gate closed.
func (db *DB) beginBatch(shs ...*shard) {
	for {
		if !db.cutGate.Load() {
			for _, sh := range shs {
				sh.pending.Add(1)
			}
			// Double check after publishing: the atomics are
			// sequentially consistent, so either the draining snapshot
			// sees our pending or we see its gate (or both) — never
			// neither.
			if !db.cutGate.Load() {
				return
			}
			for _, sh := range shs {
				sh.pending.Add(-1)
			}
			db.wakeCutWaiters()
		}
		db.waitGateOpen()
	}
}

// endBatch closes a bracket whose caller mutated every listed shard:
// cutSeq++ marks the mutation for capture validation, then pending--
// readmits captures. A bracket that turned out to mutate nothing must
// use endBatchClean instead so it does not invalidate pooled cuts.
func (db *DB) endBatch(shs ...*shard) {
	for _, sh := range shs {
		sh.cutSeq.Add(1)
		sh.pending.Add(-1)
	}
	db.wakeCutWaiters()
}

// endBatchClean closes a bracket that mutated nothing: pending is
// released without moving cutSeq, so pooled cuts stay valid.
func (db *DB) endBatchClean(shs ...*shard) {
	for _, sh := range shs {
		sh.pending.Add(-1)
	}
	db.wakeCutWaiters()
}

// wakeCutWaiters nudges a draining snapshot after a pending decrement.
// One atomic load on the fast path; the mutex is only touched while a
// snapshot actually holds the gate.
func (db *DB) wakeCutWaiters() {
	if db.cutGate.Load() {
		db.gateMu.Lock()
		db.gateCond.Broadcast()
		db.gateMu.Unlock()
	}
}

// waitGateOpen parks the caller until the escalated snapshot reopens
// the gate, and records the stall in spatialdb_cut_wait_us.
func (db *DB) waitGateOpen() {
	start := time.Now()
	db.gateMu.Lock()
	for db.cutGate.Load() {
		db.gateCond.Wait()
	}
	db.gateMu.Unlock()
	mCutWaitUs.Observe(float64(time.Since(start).Microseconds()))
}

// pendingDrained reports whether no bracket is in flight on any shard.
// Caller holds gateMu with the gate closed, so a true result is stable
// until the gate reopens.
func (db *DB) pendingDrained() bool {
	for _, sh := range db.allShards() {
		if sh.pending.Load() != 0 {
			return false
		}
	}
	return true
}
