// Integration tests over the public facade: a full deployment —
// registry, location-service daemon, remote adapters, remote clients —
// wired through real TCP sockets, plus facade-level sanity checks.
package middlewhere_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"middlewhere"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

// TestFacadeLocalFlow exercises the library fully in-process through
// the public API only.
func TestFacadeLocalFlow(t *testing.T) {
	bld := middlewhere.PaperFloor()
	svc, err := middlewhere.New(bld, middlewhere.WithClock(fixedClock()))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("ubi-1", floor, 0.9, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := middlewhere.NewRFID("rf-1", floor, middlewhere.Pt(370, 15), 15, 0.8,
		svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	now := fixedClock()()
	if err := ubi.ReportFix("alice", middlewhere.Pt(370, 15), now); err != nil {
		t.Fatal(err)
	}
	if err := rf.ReportBadge("alice", now); err != nil {
		t.Fatal(err)
	}

	loc, err := svc.LocateObject("alice")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic.String() != "CS/Floor3/NetLab" {
		t.Errorf("symbolic = %s", loc.Symbolic)
	}
	if loc.Band < middlewhere.BandMedium {
		t.Errorf("band = %v", loc.Band)
	}
	// Privacy policy through the facade.
	svc.SetPrivacy("alice", middlewhere.PrivacyPolicy{MaxGranularity: middlewhere.GranFloor})
	loc, _ = svc.LocateObject("alice")
	if loc.Symbolic.String() != "CS/Floor3" {
		t.Errorf("privacy-limited symbolic = %s", loc.Symbolic)
	}
	svc.SetPrivacy("alice", middlewhere.PrivacyPolicy{})

	// Rule engine over derived facts.
	e := svc.RuleEngine()
	if err := e.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if facts := e.Facts("ecfp"); len(facts) == 0 {
		t.Error("no ecfp facts")
	}

	// Spatial helpers exported on the facade.
	if rel, pass, err := svc.RelateRegions(
		middlewhere.MustParseGLOB("CS/Floor3/NetLab"),
		middlewhere.MustParseGLOB("CS/Floor3/MainCorridor"),
	); err != nil || rel != middlewhere.EC || pass != middlewhere.PassageFree {
		t.Errorf("relate = %v %v %v", rel, pass, err)
	}
}

// TestFullStackDeployment runs registry + daemon + two clients over
// TCP: an adapter host feeding readings and an application host
// querying and subscribing — the paper's §7 deployment picture.
func TestFullStackDeployment(t *testing.T) {
	// Service discovery.
	reg := middlewhere.NewRegistryServer(nil)
	regAddr, err := reg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// The location-service daemon.
	svc, err := middlewhere.New(middlewhere.PaperFloor())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := middlewhere.NewRemoteServer(svc)
	svcAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The daemon registers itself.
	regClient, err := middlewhere.DialRegistry(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer regClient.Close()
	if err := regClient.Register("location-service", svcAddr, time.Minute); err != nil {
		t.Fatal(err)
	}

	// An application discovers the service through the registry.
	appReg, err := middlewhere.DialRegistry(regAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer appReg.Close()
	entry, err := appReg.Lookup("location-service")
	if err != nil {
		t.Fatal(err)
	}
	app, err := middlewhere.DialLocation(entry.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	// A separate adapter host connects too.
	adapterHost, err := middlewhere.DialLocation(entry.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer adapterHost.Close()
	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("remote-ubi", floor, 0.9,
		adapterHost, adapterHost, middlewhere.AdapterOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The application subscribes, the adapter host reports, the
	// notification crosses two TCP connections.
	notified := make(chan middlewhere.NotificationDTO, 4)
	if _, err := app.Subscribe(middlewhere.SubscribeArgs{
		Region:  "CS/Floor3/NetLab",
		MinProb: 0.3,
	}, func(n middlewhere.NotificationDTO) { notified <- n }); err != nil {
		t.Fatal(err)
	}
	if err := ubi.ReportFix("walker", middlewhere.Pt(370, 15), time.Now()); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-notified:
		if n.Object != "walker" {
			t.Errorf("notification = %+v", n)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no cross-host notification")
	}

	// And the application can query.
	loc, err := app.Locate("walker")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Symbolic != "CS/Floor3/NetLab" {
		t.Errorf("remote locate = %+v", loc)
	}
}

// TestSimulatedDeploymentEndToEnd drives the full simulated world into
// a service through the facade and checks tracking quality, including
// card readers placed on the paper floor's locked room.
func TestSimulatedDeploymentEndToEnd(t *testing.T) {
	bld := middlewhere.PaperFloor()
	s, err := middlewhere.NewSim(bld, middlewhere.SimConfig{
		People:   4,
		Seed:     13,
		DwellMin: 3 * time.Second,
		DwellMax: 8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := middlewhere.New(bld, middlewhere.WithClock(s.Now))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("ubi", floor, 1.0, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	card, err := middlewhere.NewCardReader("card-3105",
		middlewhere.MustParseGLOB("CS/Floor3/3105"), svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	observers := []middlewhere.Observer{
		middlewhere.NewUbisenseField(ubi, bld.Universe, 1.0, s.Rand()),
		&middlewhere.CardReaderDoor{Adapter: card, Room: "CS/Floor3/3105"},
	}
	correctRoom, total := 0, 0
	if err := middlewhere.RunSim(s, 200, observers...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Step()
		for _, o := range observers {
			if err := o.Observe(s.Now(), s.People()); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 != 0 {
			continue
		}
		for _, p := range s.People() {
			loc, err := svc.LocateObject(p.ID)
			if err != nil {
				continue
			}
			total++
			if loc.Symbolic.String() == p.Room {
				correctRoom++
			}
		}
	}
	if total == 0 {
		t.Fatal("nobody located")
	}
	acc := float64(correctRoom) / float64(total)
	if acc < 0.7 {
		t.Errorf("room accuracy = %.2f (%d/%d)", acc, correctRoom, total)
	}
}

// TestSyntheticBuildingFacade checks the synthetic generator through
// the facade.
func TestSyntheticBuildingFacade(t *testing.T) {
	bld := middlewhere.SyntheticBuilding("X", 2, 2, 10, 8, 4)
	svc, err := middlewhere.New(bld)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := len(svc.DB().Objects()); got != 1+2+4 {
		t.Errorf("objects = %d", got)
	}
	rt, err := svc.RouteBetween(
		middlewhere.MustParseGLOB("X/F/r0c0"),
		middlewhere.MustParseGLOB("X/F/r1c1"),
		middlewhere.FreeOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Regions) < 3 {
		t.Errorf("route = %v", rt.Regions)
	}
}

// TestSoakLargeDeployment is a scale check: a 10x10-room floor, 40
// people, 4 technologies, subscriptions on every room — run for 300
// simulated seconds and verify the service stays consistent.
func TestSoakLargeDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	bld := middlewhere.SyntheticBuilding("SOAK", 10, 10, 15, 12, 6)
	s, err := middlewhere.NewSim(bld, middlewhere.SimConfig{
		People:   40,
		Seed:     99,
		DwellMin: 2 * time.Second,
		DwellMax: 8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := middlewhere.New(bld, middlewhere.WithClock(s.Now), middlewhere.WithHistory(16))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	frame := middlewhere.MustParseGLOB("SOAK/F")
	ubi, err := middlewhere.NewUbisense("soak-ubi", frame, 0.9, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var observers []middlewhere.Observer
	observers = append(observers, middlewhere.NewUbisenseField(ubi, bld.Universe, 0.9, s.Rand()))
	for i, pos := range []middlewhere.Point{
		middlewhere.Pt(30, 30), middlewhere.Pt(100, 90), middlewhere.Pt(140, 150),
	} {
		rf, err := middlewhere.NewRFID(fmt.Sprintf("soak-rf-%d", i), frame, pos, 25, 0.8,
			svc, svc, middlewhere.AdapterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		observers = append(observers, middlewhere.NewRFIDStation(rf, pos, 25, 0.8, s.Rand()))
	}

	// One entry subscription per room (100 triggers).
	var notifications int64
	var mu sync.Mutex
	for _, room := range bld.Rooms() {
		g, err := middlewhere.ParseGLOB(room)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Subscribe(middlewhere.Subscription{
			Region:  g,
			MinProb: 0.4,
			Handler: func(middlewhere.Notification) {
				mu.Lock()
				notifications++
				mu.Unlock()
			},
		}); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 300; i++ {
		s.Step()
		for _, o := range observers {
			if err := o.Observe(s.Now(), s.People()); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Sanity: most people locatable, probabilities sane, notifications
	// flowed.
	located := 0
	for _, p := range s.People() {
		loc, err := svc.LocateObject(p.ID)
		if err != nil {
			continue
		}
		located++
		if loc.Prob < 0 || loc.Prob > 1 {
			t.Errorf("%s: prob %v", p.ID, loc.Prob)
		}
	}
	if located < 30 {
		t.Errorf("only %d/40 located", located)
	}
	mu.Lock()
	n := notifications
	mu.Unlock()
	if n == 0 {
		t.Error("no notifications in 300s with 40 people and 100 room triggers")
	}
	t.Logf("soak: located %d/40, %d notifications", located, n)
}
