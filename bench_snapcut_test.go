// Ingest-during-snapshot benchmarks (EXPERIMENTS.md §PERF-9,
// BENCH_4.json): per-reading ingest latency while a sustained stream
// of snapshot cuts runs against the same database. With the global
// cutMu every cut stalls every floor's ingest for the whole capture;
// with the per-shard epoch handshake a cut never blocks ingest, so
// these figures must stay within 1.2x of the no-snapshot baseline
// (BenchmarkMultiFloorIngestBatch/floors-4 — the same ingest load
// without the cut stream).
//
// The antagonist cuts on a fixed ~2kHz cadence rather than a closed
// spin loop: the lock-free path completes cuts orders of magnitude
// faster than the cutMu path did, so an unthrottled antagonist would
// compare "ingest under N cuts/sec" against "ingest under 100N
// cuts/sec" — and on a GOMAXPROCS=1 runner a never-parking spin loop
// additionally claims a fixed scheduler share (~1/5 of the CPU with
// four writers), flooring the ratio near 1.25x for any
// implementation. The fixed cadence holds the offered cut load equal
// across implementations (open loop, like the cityload generator);
// cuts/op reports the pressure actually applied.
package middlewhere_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"middlewhere"
)

// BenchmarkIngestDuringSnapshotCuts is BenchmarkMultiFloorIngestBatch
// with a snapshot antagonist: one goroutine takes database cuts on a
// fixed ~2kHz cadence (the ObjectsInRegion / trigger-dispatch capture
// path, at far above any real query rate) while every floor ingests
// 64-reading batches concurrently. The reported ns/op is the per-op
// ingest cost under that cut stream.
func BenchmarkIngestDuringSnapshotCuts(b *testing.B) {
	const floors = 4
	b.Run("floors-4", func(b *testing.B) {
		svc := benchMultiFloorService(b, floors)
		batches := make([][]middlewhere.Reading, floors)
		for f := range batches {
			batches[f] = multiFloorBatch(f)
			if err := svc.IngestBatch(batches[f]); err != nil {
				b.Fatal(err)
			}
		}
		db := svc.DB()
		stop := make(chan struct{})
		done := make(chan struct{})
		var cuts atomic.Int64
		go func() {
			defer close(done)
			tick := time.NewTicker(500 * time.Microsecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				snap := db.Snapshot()
				_ = snap.MobileObjects()
				snap.Close()
				cuts.Add(1)
			}
		}()
		b.ResetTimer()
		var wg sync.WaitGroup
		for f := 0; f < floors; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				for i := 0; i < b.N; i++ {
					if err := svc.IngestBatch(batches[f]); err != nil {
						b.Error(err)
						return
					}
				}
			}(f)
		}
		wg.Wait()
		b.StopTimer()
		close(stop)
		<-done
		b.ReportMetric(float64(floors*64), "readings/op")
		b.ReportMetric(float64(cuts.Load())/float64(b.N), "cuts/op")
	})
}
