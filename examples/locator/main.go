// Command locator reproduces the paper's Vocal Personnel Locator
// (§8.4) with a text interface in place of the speech front-end: the
// user asks where a person or object is, the application queries the
// spatial database and the Location Service, and replies in words.
//
// Run it with queries as arguments, e.g.:
//
//	locator "where is tom" "who is in CS/Floor3/NetLab" \
//	        "find power-outlets" "route CS/Floor3/NetLab CS/Floor3/HCILab"
//
// With no arguments it runs a scripted demo conversation.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"middlewhere"
)

// locator answers natural-ish queries.
type locator struct {
	svc *middlewhere.Service
}

// answer handles one query line.
func (l *locator) answer(q string) string {
	words := strings.Fields(strings.TrimSpace(q))
	if len(words) == 0 {
		return "Say something like: where is tom"
	}
	switch {
	case len(words) >= 3 && words[0] == "where" && words[1] == "is":
		return l.whereIs(words[2])
	case len(words) >= 4 && words[0] == "who" && words[1] == "is" && words[2] == "in":
		return l.whoIsIn(words[3])
	case len(words) >= 2 && words[0] == "find":
		return l.find(words[1])
	case len(words) >= 3 && words[0] == "route":
		return l.route(words[1], words[2])
	default:
		return fmt.Sprintf("I did not understand %q.", q)
	}
}

func (l *locator) whereIs(who string) string {
	// People first.
	if loc, err := l.svc.LocateObject(who); err == nil {
		return fmt.Sprintf("%s is in %s with %s probability (%.0f%%).",
			who, spoken(loc.Symbolic.String()), loc.Band, loc.Prob*100)
	}
	// Then static objects by suffix match on the object table.
	for _, o := range l.svc.DB().Objects() {
		if strings.EqualFold(o.GLOB.Name(), who) {
			return fmt.Sprintf("The %s is a %s located in %s.",
				who, strings.ToLower(o.Type), spoken(o.GLOB.Prefix().String()))
		}
	}
	return fmt.Sprintf("I cannot find %s anywhere.", who)
}

func (l *locator) whoIsIn(region string) string {
	g, err := middlewhere.ParseGLOB(region)
	if err != nil {
		return fmt.Sprintf("%q is not a location I know.", region)
	}
	people, err := l.svc.ObjectsInRegion(g, 0.4)
	if err != nil || len(people) == 0 {
		return fmt.Sprintf("Nobody seems to be in %s right now.", spoken(region))
	}
	names := make([]string, 0, len(people))
	for who := range people {
		names = append(names, who)
	}
	sort.Strings(names)
	return fmt.Sprintf("In %s I can see: %s.", spoken(region), strings.Join(names, ", "))
}

func (l *locator) find(property string) string {
	// "Where is the nearest region that has power outlets?" (§5.1)
	got := l.svc.DB().Nearest(middlewhere.Pt(0, 0), 1, middlewhere.ObjectFilter{
		Properties: map[string]string{property: "yes"},
	})
	if len(got) == 0 {
		// Try value "high" for signal-strength style properties.
		got = l.svc.DB().Nearest(middlewhere.Pt(0, 0), 1, middlewhere.ObjectFilter{
			Properties: map[string]string{property: "high"},
		})
	}
	if len(got) == 0 {
		return fmt.Sprintf("No region with %s found.", property)
	}
	return fmt.Sprintf("The nearest region with %s is %s.", property, spoken(got[0].ID()))
}

func (l *locator) route(from, to string) string {
	gf, err1 := middlewhere.ParseGLOB(from)
	gt, err2 := middlewhere.ParseGLOB(to)
	if err1 != nil || err2 != nil {
		return "Routes need two locations."
	}
	rt, err := l.svc.RouteBetween(gf, gt, middlewhere.AllowRestricted)
	if err != nil {
		return fmt.Sprintf("There is no way to walk from %s to %s.", spoken(from), spoken(to))
	}
	hops := make([]string, len(rt.Regions))
	for i, r := range rt.Regions {
		hops[i] = spoken(r)
	}
	return fmt.Sprintf("Walk %.0f feet: %s.", rt.Length, strings.Join(hops, ", then "))
}

// spoken shortens a GLOB for speech ("CS/Floor3/NetLab" -> "NetLab").
func spoken(g string) string {
	if i := strings.LastIndexByte(g, '/'); i >= 0 {
		return g[i+1:]
	}
	return g
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(queries []string) error {
	bld := middlewhere.PaperFloor()
	now := time.Date(2026, 7, 5, 15, 0, 0, 0, time.UTC)
	svc, err := middlewhere.New(bld, middlewhere.WithClock(func() time.Time { return now }))
	if err != nil {
		return err
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("ubi-1", floor, 0.95, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	// Register a second technology so the §4.4 probability bands have
	// spread (see messenger example).
	if _, err := middlewhere.NewRFID("rf-1", floor, middlewhere.Pt(340, 10), 15, 0.8,
		svc, svc, middlewhere.AdapterOptions{}); err != nil {
		return err
	}
	for _, f := range []struct {
		who  string
		x, y float64
	}{{"tom", 370, 15}, {"ann", 340, 10}, {"ralph", 200, 37}} {
		if err := ubi.ReportFix(f.who, middlewhere.Pt(f.x, f.y), now); err != nil {
			return err
		}
	}

	if len(queries) == 0 {
		queries = []string{
			"where is tom",
			"where is ann",
			"where is lightswitch1",
			"who is in CS/Floor3/NetLab",
			"who is in CS/Floor3/HCILab",
			"find power-outlets",
			"find bluetooth",
			"route CS/Floor3/NetLab CS/Floor3/3105",
			"where is bigfoot",
			"make me a sandwich",
		}
	}
	l := &locator{svc: svc}
	for _, q := range queries {
		fmt.Printf("you:     %s\n", q)
		fmt.Printf("locator: %s\n", l.answer(q))
	}
	return nil
}
