// Command resilient demonstrates the fault-tolerant distribution
// layer: a location service daemon, a reconnecting client dialed
// through a fault-injection proxy, a trigger subscription, and an
// adapter feeding readings through a buffered, circuit-broken sink.
// Mid-run the proxy kills every connection; the client reconnects,
// resumes its session (sensor registration + subscription), and the
// application never re-registers anything.
package main

import (
	"fmt"
	"log"
	"time"

	"middlewhere"
	"middlewhere/internal/faultnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The daemon side: a location service published over TCP.
	svc, err := middlewhere.New(middlewhere.PaperFloor())
	if err != nil {
		return err
	}
	defer svc.Close()
	srv := middlewhere.NewRemoteServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	// A chaos proxy between client and daemon: everything the client
	// does rides through it, so we can sever the link on demand.
	proxy, err := faultnet.NewProxy(addr, faultnet.Config{Seed: 1})
	if err != nil {
		return err
	}
	defer proxy.Close()

	// The application side: a reconnecting client with fast backoff.
	c, err := middlewhere.DialLocationOptions(proxy.Addr(), middlewhere.RemoteDialOptions{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
		OnStateChange: func(s middlewhere.ConnState) {
			fmt.Printf("  [link] %s\n", s)
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()

	spec := middlewhere.UbisenseSpec(0.95)
	spec.TTL = time.Minute
	if err := c.RegisterSensor("ubi-1", spec); err != nil {
		return err
	}
	notified := make(chan middlewhere.NotificationDTO, 8)
	if _, err := c.Subscribe(middlewhere.SubscribeArgs{
		Region: "CS/Floor3/NetLab", MinProb: 0.3,
	}, func(n middlewhere.NotificationDTO) { notified <- n }); err != nil {
		return err
	}

	// Readings flow through a resilient sink: if the daemon flaps, they
	// buffer and drain instead of erroring into the sensor driver.
	sink := middlewhere.NewResilientSink(c, middlewhere.ResilientOptions{})
	defer sink.Close()

	ingest := func(obj string) error {
		return sink.Ingest(middlewhere.Reading{
			SensorID:  "ubi-1",
			MObjectID: obj,
			Location:  middlewhere.MustParseGLOB("CS/Floor3/(370,15)"),
			Time:      time.Now(),
		})
	}
	await := func(obj string) error {
		for {
			select {
			case n := <-notified:
				if n.Object == obj {
					fmt.Printf("notified: %s entered NetLab (p=%.2f)\n", n.Object, n.Prob)
					return nil
				}
			case <-time.After(200 * time.Millisecond):
				// Lost with a severed link; re-subscription re-arms the
				// trigger, so just feed the reading again.
				if err := ingest(obj); err != nil {
					return err
				}
			}
		}
	}

	fmt.Println("-- before any fault")
	if err := ingest("alice"); err != nil {
		return err
	}
	if err := await("alice"); err != nil {
		return err
	}

	fmt.Println("-- killing every connection mid-session")
	proxy.KillConnections()
	if err := ingest("bob"); err != nil {
		return err
	}
	if err := await("bob"); err != nil {
		return err
	}

	loc, err := c.Locate("alice")
	if err != nil {
		return err
	}
	fmt.Printf("alice still locatable after reconnect: %s (p=%.2f)\n", loc.Symbolic, loc.Prob)

	h := c.Health()
	sh, err := c.ServerHealth()
	if err != nil {
		return err
	}
	fmt.Printf("client: %s, %d reconnect(s); server: %s, %d readings ingested\n",
		h.State, h.Reconnects, sh.Status, sh.Ingested)
	return nil
}
