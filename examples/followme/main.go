// Command followme reproduces the paper's Follow Me application
// (§8.1): a user's session (applications, files, state) follows them
// from display to display. A user proxy watches the user's location;
// when the user leaves the vicinity of the display hosting their
// session, the session suspends, and when they show up in the usage
// region of another display, it resumes there.
//
// The user's movement is driven by the building simulator standing in
// for a real person walking the floor.
package main

import (
	"fmt"
	"log"
	"time"

	"middlewhere"
)

// session is the user's migratable workspace.
type session struct {
	User    string
	Display string // "" while suspended
	Opened  []string
}

// userProxy manages one user's session, following §8.1: it queries
// MiddleWhere for the user's location and for nearby suitable
// displays.
type userProxy struct {
	svc     *middlewhere.Service
	user    string
	session session
}

// step reconsiders the session placement. It returns a human-readable
// event when something changed.
func (p *userProxy) step() string {
	display, prob, err := p.svc.NearestUsable(p.user, "Display", 0.25)
	switch {
	case err != nil && p.session.Display != "":
		// User is away from every display: suspend.
		prev := p.session.Display
		p.session.Display = ""
		return fmt.Sprintf("session suspended (left %s)", prev)
	case err != nil:
		return ""
	case display == p.session.Display:
		return ""
	default:
		prev := p.session.Display
		p.session.Display = display
		if prev == "" {
			return fmt.Sprintf("session resumed on %s (p=%.2f)", display, prob)
		}
		return fmt.Sprintf("session migrated %s -> %s (p=%.2f)", prev, display, prob)
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bld := middlewhere.PaperFloor()

	// Drive time from the simulator so temporal degradation is
	// deterministic.
	s, err := middlewhere.NewSim(bld, middlewhere.SimConfig{
		People:   1,
		Seed:     42,
		DwellMin: 4 * time.Second,
		DwellMax: 10 * time.Second,
	})
	if err != nil {
		return err
	}
	svc, err := middlewhere.New(bld, middlewhere.WithClock(s.Now))
	if err != nil {
		return err
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("ubi-1", floor, 1.0, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	field := middlewhere.NewUbisenseField(ubi, bld.Universe, 1.0, s.Rand())

	user := "person-00"
	proxy := &userProxy{
		svc:  svc,
		user: user,
		session: session{
			User:   user,
			Opened: []string{"paper-draft.tex", "results.ods"},
		},
	}

	fmt.Printf("following %s's session (%v)\n", user, proxy.session.Opened)
	events := 0
	for i := 0; i < 900 && events < 6; i++ {
		s.Step()
		if err := field.Observe(s.Now(), s.People()); err != nil {
			return err
		}
		if ev := proxy.step(); ev != "" {
			pos, _ := s.TruePosition(user)
			fmt.Printf("t=%3ds user at (%5.1f,%5.1f): %s\n",
				i, pos.X, pos.Y, ev)
			events++
		}
	}
	if events == 0 {
		return fmt.Errorf("no session events in 900 steps")
	}
	fmt.Println("done:", events, "session events")
	return nil
}
