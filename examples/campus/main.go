// Command campus demonstrates the outdoor/indoor handoff of §1: "GPS
// is the de facto location technology for wide outdoor areas; however
// it does not work in covered areas or indoors." A walker crosses a
// campus quad (GPS coverage) into a building (Ubisense coverage); the
// Location Service fuses whichever technology currently sees them and
// the estimate hands off seamlessly.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"middlewhere"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const planJSON = `{
  "name": "UIUC",
  "universe": {"minX": 0, "minY": 0, "maxX": 200, "maxY": 60},
  "frames": [
    {"name": "UIUC"},
    {"name": "UIUC/quad", "parent": "UIUC"},
    {"name": "UIUC/CS", "parent": "UIUC", "x": 100}
  ],
  "objects": [
    {"glob": "UIUC/quad", "type": "Corridor", "kind": "polygon",
     "points": [[0,0],[100,0],[100,60],[0,60]]},
    {"glob": "UIUC/CS", "type": "Floor", "kind": "polygon",
     "points": [[0,0],[100,0],[100,60],[0,60]]},
    {"glob": "UIUC/CS/hall", "type": "Corridor", "kind": "polygon",
     "points": [[0,0],[30,0],[30,60],[0,60]]},
    {"glob": "UIUC/CS/lab", "type": "Room", "kind": "polygon",
     "points": [[30,0],[100,0],[100,30],[30,30]]},
    {"glob": "UIUC/CS/office", "type": "Room", "kind": "polygon",
     "points": [[30,30],[100,30],[100,60],[30,60]]}
  ],
  "doors": [
    {"roomA": "UIUC/quad", "roomB": "UIUC/CS/hall",
     "span": [100, 28, 100, 32], "kind": "free"},
    {"roomA": "UIUC/CS/hall", "roomB": "UIUC/CS/lab",
     "span": [130, 14, 130, 18], "kind": "free"},
    {"roomA": "UIUC/CS/hall", "roomB": "UIUC/CS/office",
     "span": [130, 44, 130, 48], "kind": "free"}
  ]
}`

func run() error {
	bld, err := middlewhere.LoadPlan(strings.NewReader(planJSON))
	if err != nil {
		return err
	}

	s, err := middlewhere.NewSim(bld, middlewhere.SimConfig{
		People:   1,
		Seed:     4,
		DwellMin: 3 * time.Second,
		DwellMax: 6 * time.Second,
	})
	if err != nil {
		return err
	}
	svc, err := middlewhere.New(bld, middlewhere.WithClock(s.Now), middlewhere.WithHistory(64))
	if err != nil {
		return err
	}
	defer svc.Close()

	campusFrame := middlewhere.MustParseGLOB("UIUC")
	// GPS anchored at the campus origin, covering only the quad.
	ref := middlewhere.GeoReference{
		Lat0: 40.1, Lon0: -88.2,
		Origin:         middlewhere.Pt(0, 0),
		UnitsPerDegLat: 364000,
		UnitsPerDegLon: 280000,
	}
	gps, err := middlewhere.NewGPS("campus-gps", campusFrame, ref, 0.95, svc, svc,
		middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	// Ubisense covering only the building interior.
	ubi, err := middlewhere.NewUbisense("cs-ubi", campusFrame, 0.95, svc, svc,
		middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}

	quad := middlewhere.R(0, 0, 100, 60)
	indoors := middlewhere.R(100, 0, 200, 60)
	observers := []middlewhere.Observer{
		middlewhere.NewGPSSatellites(gps, quad, ref, 0.95, s.Rand()),
		middlewhere.NewUbisenseField(ubi, indoors, 0.95, s.Rand()),
	}

	fmt.Println("walking the campus: GPS on the quad, UWB indoors")
	lastTech := ""
	handoffs := 0
	for i := 0; i < 600 && handoffs < 4; i++ {
		s.Step()
		for _, o := range observers {
			if err := o.Observe(s.Now(), s.People()); err != nil {
				return err
			}
		}
		loc, err := svc.LocateObject("person-00")
		if err != nil {
			continue
		}
		tech := "?"
		for _, id := range loc.Support {
			tech = id
		}
		if tech != lastTech && tech != "?" {
			pos, _ := s.TruePosition("person-00")
			fmt.Printf("t=%3ds  %-14s -> estimate %-14s via %-10s (true (%5.1f,%4.1f), err %.1f)\n",
				i, truthSide(pos.X), loc.Symbolic.Name(), tech,
				pos.X, pos.Y, loc.Rect.Center().Dist(pos))
			lastTech = tech
			handoffs++
		}
	}
	if handoffs == 0 {
		return fmt.Errorf("no technology handoffs observed")
	}
	fmt.Printf("done: %d technology handoffs; history kept %d fixes\n",
		handoffs, len(svc.History("person-00")))
	return nil
}

func truthSide(x float64) string {
	if x < 100 {
		return "on the quad"
	}
	return "inside CS"
}
