// Command messenger reproduces the paper's Anywhere Instant Messaging
// application (§8.2): incoming messages from a buddy list are shown on
// whichever display is closest to the recipient. Users can block
// buddies at certain locations, and private messages are only shown
// when the recipient's location is known with at least 'high'
// probability and nobody else is in the immediate vicinity.
package main

import (
	"fmt"
	"log"
	"time"

	"middlewhere"
)

// message is one instant message.
type message struct {
	From, To, Text string
	Private        bool
}

// deliveryPolicy holds a user's §8.2 customizations.
type deliveryPolicy struct {
	// BlockedAt maps buddy -> symbolic region where their messages are
	// blocked ("don't show messages from my boss in the break room").
	BlockedAt map[string]middlewhere.GLOB
}

// messenger routes messages to displays.
type messenger struct {
	svc      *middlewhere.Service
	policies map[string]deliveryPolicy
}

// deliver decides where (and whether) to show a message. It returns a
// human-readable outcome.
func (m *messenger) deliver(msg message) string {
	loc, err := m.svc.LocateObject(msg.To)
	if err != nil {
		return fmt.Sprintf("HOLD    %q for %s: recipient not located", msg.Text, msg.To)
	}

	// Per-location blocking.
	if pol, ok := m.policies[msg.To]; ok {
		if blockRegion, blocked := pol.BlockedAt[msg.From]; blocked {
			if loc.Symbolic.HasPrefix(blockRegion) {
				return fmt.Sprintf("BLOCK   %q from %s: %s blocks them in %s",
					msg.Text, msg.From, msg.To, blockRegion)
			}
		}
	}

	// Private messages need high-confidence location and an empty
	// vicinity (§8.2).
	if msg.Private {
		if loc.Band < middlewhere.BandHigh {
			return fmt.Sprintf("HOLD    private %q: location only %s", msg.Text, loc.Band)
		}
		nearby, err := m.svc.ObjectsInRegion(loc.Symbolic, 0.4)
		if err == nil {
			for other := range nearby {
				if other != msg.To {
					return fmt.Sprintf("HOLD    private %q: %s is nearby", msg.Text, other)
				}
			}
		}
	}

	display, p, err := m.svc.NearestUsable(msg.To, "Display", 0.2)
	if err != nil {
		return fmt.Sprintf("QUEUE   %q: %s is in %s but not near any display",
			msg.Text, msg.To, loc.Symbolic)
	}
	return fmt.Sprintf("SHOW    %q -> %s (p=%.2f)", msg.Text, display, p)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bld := middlewhere.PaperFloor()
	now := time.Date(2026, 7, 5, 14, 0, 0, 0, time.UTC)
	svc, err := middlewhere.New(bld, middlewhere.WithClock(func() time.Time { return now }))
	if err != nil {
		return err
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("ubi-1", floor, 0.95, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	// A second registered technology spreads the §4.4 band thresholds
	// (min/median/max of the sensors' accuracies), as in the paper's
	// multi-technology deployment.
	rfid, err := middlewhere.NewRFID("rf-1", floor, middlewhere.Pt(366, 4), 15, 0.8,
		svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}

	// Place people: tom at the NetLab display, ann in the HCILab (near
	// display2), ralph in the corridor, nobody knows where zoe is.
	fixes := []struct {
		who  string
		x, y float64
	}{
		{"tom", 365, 2},
		{"ann", 396, 2},
		{"ralph", 120, 37},
	}
	for _, f := range fixes {
		if err := ubi.ReportFix(f.who, middlewhere.Pt(f.x, f.y), now); err != nil {
			return err
		}
	}
	// Tom's badge is also seen near the NetLab display: the fused
	// estimate reaches the 'high' band private delivery needs.
	if err := rfid.ReportBadge("tom", now); err != nil {
		return err
	}

	m := &messenger{
		svc: svc,
		policies: map[string]deliveryPolicy{
			"ann": {BlockedAt: map[string]middlewhere.GLOB{
				// Ann blocks bob while she is in the HCILab.
				"bob": middlewhere.MustParseGLOB("CS/Floor3/HCILab"),
			}},
		},
	}

	msgs := []message{
		{From: "ann", To: "tom", Text: "lunch at noon?"},
		{From: "bob", To: "ann", Text: "status report?"},
		{From: "tom", To: "ann", Text: "review my draft"},
		{From: "ann", To: "ralph", Text: "printer is fixed"},
		{From: "tom", To: "zoe", Text: "welcome aboard"},
		{From: "ann", To: "tom", Text: "salary details", Private: true},
	}
	for _, msg := range msgs {
		fmt.Println(m.deliver(msg))
	}

	// A second person walks up next to tom: private delivery pauses.
	if err := ubi.ReportFix("ralph", middlewhere.Pt(367, 4), now.Add(time.Second)); err != nil {
		return err
	}
	fmt.Println(m.deliver(message{From: "ann", To: "tom", Text: "one more secret", Private: true}))
	return nil
}
