// Command notifier reproduces the paper's Location-Based Notifications
// application (§8.3): messages are sent to everyone located within a
// geographical boundary — "the store is closing in five minutes". It
// sets a location trigger on the target area, maintains the list of
// people inside it, and broadcasts when asked.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"middlewhere"
)

// zoneNotifier tracks who is inside a region and can broadcast to
// them (§8.3: "implemented by setting up location triggers in the
// target area and maintaining a list of users in the region").
type zoneNotifier struct {
	svc    *middlewhere.Service
	region middlewhere.GLOB

	mu     sync.Mutex
	inside map[string]float64
}

// newZoneNotifier subscribes to entries into the region.
func newZoneNotifier(svc *middlewhere.Service, region middlewhere.GLOB) (*zoneNotifier, error) {
	z := &zoneNotifier{svc: svc, region: region, inside: make(map[string]float64)}
	_, err := svc.Subscribe(middlewhere.Subscription{
		Region:       region,
		MinProb:      0.4,
		EveryReading: true, // keep the membership list current
		Handler: func(n middlewhere.Notification) {
			z.mu.Lock()
			z.inside[n.Object] = n.Prob
			z.mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	return z, nil
}

// refresh drops people who are no longer probably inside.
func (z *zoneNotifier) refresh() {
	current, err := z.svc.ObjectsInRegion(z.region, 0.4)
	if err != nil {
		return
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	for who := range z.inside {
		if _, still := current[who]; !still {
			delete(z.inside, who)
		}
	}
	for who, p := range current {
		z.inside[who] = p
	}
}

// broadcast sends text to everyone currently inside.
func (z *zoneNotifier) broadcast(text string) []string {
	z.refresh()
	z.mu.Lock()
	defer z.mu.Unlock()
	var out []string
	for who, p := range z.inside {
		out = append(out, fmt.Sprintf("  -> %s (p=%.2f): %q", who, p, text))
	}
	sort.Strings(out)
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bld := middlewhere.PaperFloor()
	s, err := middlewhere.NewSim(bld, middlewhere.SimConfig{
		People:   6,
		Seed:     7,
		DwellMin: 5 * time.Second,
		DwellMax: 15 * time.Second,
	})
	if err != nil {
		return err
	}
	svc, err := middlewhere.New(bld, middlewhere.WithClock(s.Now))
	if err != nil {
		return err
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("ubi-1", floor, 1.0, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	field := middlewhere.NewUbisenseField(ubi, bld.Universe, 1.0, s.Rand())

	// The "store" is the NetLab.
	store := middlewhere.MustParseGLOB("CS/Floor3/NetLab")
	zone, err := newZoneNotifier(svc, store)
	if err != nil {
		return err
	}

	// Let people wander for five simulated minutes, then close up.
	for i := 0; i < 300; i++ {
		s.Step()
		if err := field.Observe(s.Now(), s.People()); err != nil {
			return err
		}
	}

	fmt.Println("closing time — notifying everyone in", store)
	delivered := zone.broadcast("The store is closing in five minutes.")
	for _, line := range delivered {
		fmt.Println(line)
	}
	if len(delivered) == 0 {
		fmt.Println("  (nobody inside right now)")
	}

	// Ground truth check: list the simulator's view for comparison.
	fmt.Println("ground truth occupants:")
	for _, p := range s.People() {
		if p.Room == store.String() {
			fmt.Printf("  -- %s at (%.1f,%.1f)\n", p.ID, p.Pos.X, p.Pos.Y)
		}
	}
	return nil
}
