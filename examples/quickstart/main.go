// Command quickstart is the smallest end-to-end MiddleWhere program:
// it builds the paper's floor, plugs in two sensor technologies,
// feeds a few readings, and exercises the pull (query) and push
// (subscription) interfaces plus a spatial-relationship query.
package main

import (
	"fmt"
	"log"
	"time"

	"middlewhere"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The physical model: the paper's Siebel Center floor (Fig. 8 /
	// Table 1), with rooms 3105, NetLab, HCILab and two corridors.
	bld := middlewhere.PaperFloor()
	svc, err := middlewhere.New(bld)
	if err != nil {
		return err
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	netlab := middlewhere.MustParseGLOB("CS/Floor3/NetLab")

	// Two location technologies: a Ubisense UWB field and an RFID
	// badge base station. The adapters register their calibrations
	// (§6) with the service.
	ubi, err := middlewhere.NewUbisense("ubi-1", floor, 0.9, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}
	rfid, err := middlewhere.NewRFID("rf-1", floor, middlewhere.Pt(370, 15), 15, 0.8,
		svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		return err
	}

	// Push mode: subscribe to NetLab entries before anyone moves.
	entered := make(chan middlewhere.Notification, 4)
	subID, err := svc.Subscribe(middlewhere.Subscription{
		Region:  netlab,
		MinProb: 0.4,
		Handler: func(n middlewhere.Notification) { entered <- n },
	})
	if err != nil {
		return err
	}
	fmt.Println("subscribed:", subID)

	// Alice's tag is seen in the NetLab by both technologies.
	now := time.Now()
	if err := ubi.ReportFix("alice", middlewhere.Pt(370, 15), now); err != nil {
		return err
	}
	if err := rfid.ReportBadge("alice", now); err != nil {
		return err
	}

	// Pull mode: where is alice?
	loc, err := svc.LocateObject("alice")
	if err != nil {
		return err
	}
	fmt.Printf("alice is in %s with probability %.3f (%s), supported by %v\n",
		loc.Symbolic, loc.Prob, loc.Band, loc.Support)

	// Region-based query: probability she is in the NetLab.
	p, band, err := svc.ProbInRegion("alice", netlab)
	if err != nil {
		return err
	}
	fmt.Printf("P(alice in NetLab) = %.3f (%s)\n", p, band)

	// The subscription fired.
	select {
	case n := <-entered:
		fmt.Printf("notification: %s entered the NetLab (p=%.3f)\n", n.Object, n.Prob)
	case <-time.After(2 * time.Second):
		return fmt.Errorf("expected a notification")
	}

	// Spatial relationships (§4.6): how do NetLab and the corridor
	// relate, and how far is the walk to the HCILab?
	rel, pass, err := svc.RelateRegions(netlab, middlewhere.MustParseGLOB("CS/Floor3/MainCorridor"))
	if err != nil {
		return err
	}
	fmt.Printf("NetLab vs MainCorridor: %s / %s\n", rel, pass)

	route, err := svc.RouteBetween(netlab, middlewhere.MustParseGLOB("CS/Floor3/HCILab"),
		middlewhere.FreeOnly)
	if err != nil {
		return err
	}
	fmt.Printf("route NetLab -> HCILab: %v (%.1f ft)\n", route.Regions, route.Length)

	// The spatial database reproduces the paper's Table 1 layout.
	fmt.Println("\nObject table (Table 1):")
	fmt.Print(svc.DB().DumpObjectTable())
	return nil
}
