# Development targets. CI (.github/workflows/ci.yml) runs exactly
# these, so a green `make check` locally means a green pipeline.

GO ?= go

.PHONY: build test race shard-stress bench bench-compare cityload vet fmt fmt-write chaos chaos-federation cluster-smoke obs stats-demo fuzz-smoke compat check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sharding/snapshot stress suite: the per-floor shard routing, floor
# migration, snapshot-isolation, and serial-vs-parallel determinism
# tests under the race detector, twice, so interleavings differ between
# runs. Kept separate from `race` so CI can re-run just these when the
# spatial database changes.
shard-stress:
	$(GO) test -race -count=2 -run 'TestShard|TestSnapshot|TestFloorMigration|TestCrossShard' ./internal/spatialdb/
	$(GO) test -race -count=2 -run 'TestObjectsInRegionSerialParallelIdentical' ./internal/core/

# One iteration per benchmark: a smoke run that keeps bench_test.go and
# internal/bench compiling and executable without burning CI minutes.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regression gate for the hot paths: re-runs the benchmarks recorded in
# BENCH_1.json (PR-4 query/ingest paths), BENCH_2.json (PR-5
# multi-floor sharding paths), BENCH_3.json (PR-6 wire codec +
# streaming ingest), BENCH_4.json (PR-9 lock-free snapshot cuts) and
# BENCH_5.json (PR-10 support-index heatmap + sharded notifier) and
# fails when any is >30% slower than its recorded ns/op (fastest of N
# runs, to filter scheduler noise). BENCH_3..5 additionally enforce
# cross-benchmark ratios (min_speedup_vs) measured in the SAME run,
# e.g. the prefiltered heatmap >= 3x cheaper than the pre-PR full
# scan, and sharded notify dispatch at parity with a single worker.
# Re-record after an intentional change with:
#   go run ./cmd/benchcompare -ref BENCH_1.json -update
#   go run ./cmd/benchcompare -ref BENCH_2.json -update
#   go run ./cmd/benchcompare -ref BENCH_3.json -update
#   go run ./cmd/benchcompare -ref BENCH_4.json -update
#   go run ./cmd/benchcompare -ref BENCH_5.json -update
bench-compare:
	$(GO) run ./cmd/benchcompare -ref BENCH_1.json -tolerance 0.30
	$(GO) run ./cmd/benchcompare -ref BENCH_2.json -tolerance 0.30
	$(GO) run ./cmd/benchcompare -ref BENCH_3.json -tolerance 0.30
	$(GO) run ./cmd/benchcompare -ref BENCH_4.json -tolerance 0.30
	$(GO) run ./cmd/benchcompare -ref BENCH_5.json -tolerance 0.30

# City-scale sustained-load gate (PERF-9, DESIGN.md §16): a MultiStorey
# city under an open-loop readings/sec target, a concurrent
# occupancy-heatmap query loop, and pass/fail on the generator's pacing
# plus windowed p99 ingest/heatmap SLOs. Exits nonzero on any breach.
cityload:
	$(GO) run ./cmd/experiments -run CITYLOAD

vet:
	$(GO) vet ./...

# Fuzz smoke: every wire-protocol decode surface fuzzes for FUZZTIME
# from its seed corpus (internal/*/testdata/fuzz/). `go test -fuzz`
# takes exactly one target per invocation, hence the list. A malformed
# frame must error — never panic, over-read, or accept a payload past
# the frame cap. Regenerate the seed corpora after a wire change with:
#   MW_WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/mwrpc ./internal/remote
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/mwrpc
	$(GO) test -run '^$$' -fuzz '^FuzzReadJSONFallback$$' -fuzztime $(FUZZTIME) ./internal/mwrpc
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeReadings$$' -fuzztime $(FUZZTIME) ./internal/remote
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeStreamAck$$' -fuzztime $(FUZZTIME) ./internal/remote
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeNotification$$' -fuzztime $(FUZZTIME) ./internal/remote
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeIngestReply$$' -fuzztime $(FUZZTIME) ./internal/remote

# Protocol-compat suite: the remote integration/chaos/stream tests and
# the adapter layer under one MW_WIRE pairing ("client/daemon"). CI
# runs all four pairings — binary/binary, binary/json, json/binary,
# json/json — so a codec mismatch can never negotiate its way into
# silently different behaviour.
MW_WIRE ?= binary/binary
compat:
	MW_WIRE='$(MW_WIRE)' $(GO) test -race -count=1 ./internal/remote/ ./internal/adapter/

# Fault-injection suite: the faultnet harness plus the chaos tests
# that drive the remote stack through it, under the race detector.
chaos:
	$(GO) test -race -count=1 ./internal/faultnet/
	$(GO) test -race -count=1 -run '^TestChaos' -v ./internal/remote/

# Multi-daemon federation chaos: a registry plus three floor daemons,
# with kills and restarts landing mid-migration and mid-query. The
# suite (plus the rest of the fed package's migration/degraded-read
# tests) runs twice under the race detector so interleavings differ;
# it asserts no reading is lost or duplicated, per-object epochs never
# regress, and every scan is either complete or explicitly partial.
chaos-federation:
	$(GO) test -race -count=2 -run '^TestChaos' -v ./internal/fed/
	$(GO) test -race -count=1 ./internal/fed/ ./internal/faultnet/
	$(MAKE) cluster-smoke

# Two-daemon cluster-stats smoke: a registry (with /metrics/cluster)
# plus two floor daemons of a two-storey building. A reading ingested
# at cs-0 for cs-1's floor must forward, `mwctl stats -cluster` must
# scrape both daemons and show the federation counters, and `mwctl
# trace -cluster` must render the stitched cross-daemon trace.
cluster-smoke:
	@$(GO) build -o /tmp/mw-reg ./cmd/mwregistry
	@$(GO) build -o /tmp/mw-fed ./cmd/middlewhere
	@$(GO) build -o /tmp/mwctl-fed ./cmd/mwctl
	@/tmp/mw-reg -addr 127.0.0.1:7640 -metrics-addr 127.0.0.1:7641 & rpid=$$!; \
	/tmp/mw-fed -addr 127.0.0.1:7642 -registry 127.0.0.1:7640 -name cs-0 \
		-building multistorey:2 -floors CS/F0 -trace -slo 'ingest=p99<1s' & d0=$$!; \
	/tmp/mw-fed -addr 127.0.0.1:7643 -registry 127.0.0.1:7640 -name cs-1 \
		-building multistorey:2 -floors CS/F1 -trace & d1=$$!; \
	sleep 2; rc=0; \
	/tmp/mwctl-fed -addr 127.0.0.1:7642 sensor ubi-1 || rc=1; \
	/tmp/mwctl-fed -addr 127.0.0.1:7643 sensor ubi-1 || rc=1; \
	/tmp/mwctl-fed -addr 127.0.0.1:7642 ingest ubi-1 alice 'CS/F1/(5,5)' || rc=1; \
	/tmp/mwctl-fed -registry 127.0.0.1:7640 stats -cluster > /tmp/mw-cluster.out || rc=1; \
	head -6 /tmp/mw-cluster.out; \
	grep -q '^cluster: 2/2' /tmp/mw-cluster.out || { echo "FAIL: cluster scrape incomplete"; rc=1; }; \
	grep -q '^fed_forwarded_readings_total *1' /tmp/mw-cluster.out || { echo "FAIL: forward not counted"; rc=1; }; \
	/tmp/mwctl-fed -registry 127.0.0.1:7640 trace -cluster 5 > /tmp/mw-trace.out || rc=1; \
	grep -q 'fed_ingest' /tmp/mw-trace.out || { echo "FAIL: no owner-side span in cluster trace"; rc=1; }; \
	curl -sf http://127.0.0.1:7641/metrics/cluster | grep -q '^cluster_daemons_scraped 2' \
		|| { echo "FAIL: /metrics/cluster"; rc=1; }; \
	/tmp/mwctl-fed -addr 127.0.0.1:7642 health -v | grep -q '^slos:' || { echo "FAIL: no slo block"; rc=1; }; \
	kill $$d0 $$d1 $$rpid; exit $$rc

# Observability suite: the obs package and trace-propagation tests
# under the race detector, then the zero-allocation guard without it
# (the race runtime allocates inside atomics, so the guard is
# build-tagged !race).
obs:
	$(GO) test -race -count=1 ./internal/obs/ ./internal/obs/cluster/
	$(GO) test -race -count=1 -run 'Trace' ./internal/remote/
	$(GO) test -race -count=1 -run 'Trace|TestSLO|TestPeerState' ./internal/fed/
	$(GO) test -count=1 -run TestDisabledInstrumentationAllocatesNothing -v ./internal/obs/
	$(GO) test -count=1 -run TestTracingDisabledFedPathAllocatesNothing -v ./internal/fed/

# Smoke the debug endpoint: start the daemon with tracing and the
# debug server on ephemeral-ish ports, hit /metrics and mw.stats
# through mwctl, then tear down.
stats-demo:
	@$(GO) build -o /tmp/mw-demo ./cmd/middlewhere
	@$(GO) build -o /tmp/mwctl-demo ./cmd/mwctl
	@/tmp/mw-demo -addr 127.0.0.1:7709 -trace -debug-addr 127.0.0.1:7779 & \
	pid=$$!; sleep 1; rc=0; \
	curl -sf http://127.0.0.1:7779/metrics | head -5 || rc=1; \
	/tmp/mwctl-demo -addr 127.0.0.1:7709 stats | head -8 || rc=1; \
	/tmp/mwctl-demo -addr 127.0.0.1:7709 health || rc=1; \
	kill $$pid; exit $$rc

# Fails when any file needs reformatting (the CI gate).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Rewrites files in place (the local fix for a failing fmt gate).
fmt-write:
	gofmt -l -w .

check: build vet fmt test race shard-stress bench bench-compare cityload chaos chaos-federation obs
	$(MAKE) compat MW_WIRE=binary/json
	$(MAKE) compat MW_WIRE=json/json
