# Development targets. CI (.github/workflows/ci.yml) runs exactly
# these, so a green `make check` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench vet fmt fmt-write chaos check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke run that keeps bench_test.go and
# internal/bench compiling and executable without burning CI minutes.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

vet:
	$(GO) vet ./...

# Fault-injection suite: the faultnet harness plus the chaos tests
# that drive the remote stack through it, under the race detector.
chaos:
	$(GO) test -race -count=1 ./internal/faultnet/
	$(GO) test -race -count=1 -run '^TestChaos' -v ./internal/remote/

# Fails when any file needs reformatting (the CI gate).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Rewrites files in place (the local fix for a failing fmt gate).
fmt-write:
	gofmt -l -w .

check: build vet fmt test race bench chaos
