module middlewhere

go 1.22
