// Package middlewhere is a Go implementation of MiddleWhere, the
// distributed middleware for location awareness in ubiquitous
// computing applications (Ranganathan, Al-Muhtadi, Chetan, Campbell,
// Mickunas — Middleware 2004).
//
// MiddleWhere separates location-sensitive applications from location
// sensing technologies: adapters convert heterogeneous sensor readings
// (UWB tags, RFID badges, biometric logins, GPS, card swipes) into a
// common representation, a spatial database stores them together with
// a geometric model of the physical space, and a probabilistic
// reasoning engine fuses them into a consolidated, probability-
// annotated view of where every person and device is.
//
// # Quick start
//
//	bld := middlewhere.PaperFloor()
//	svc, err := middlewhere.New(bld)
//	if err != nil { ... }
//	defer svc.Close()
//
//	// Plug in a sensor and feed a reading.
//	ubi, _ := middlewhere.NewUbisense("ubi-1", middlewhere.MustParseGLOB("CS/Floor3"),
//	    0.9, svc, svc, middlewhere.AdapterOptions{})
//	_ = ubi.ReportFix("alice", middlewhere.Pt(370, 15), time.Now())
//
//	// Pull: where is alice?
//	loc, _ := svc.LocateObject("alice")
//	fmt.Println(loc.Symbolic, loc.Prob, loc.Band)
//
//	// Push: tell me when anyone enters the NetLab.
//	svc.Subscribe(middlewhere.Subscription{
//	    Region:  middlewhere.MustParseGLOB("CS/Floor3/NetLab"),
//	    MinProb: 0.5,
//	    Handler: func(n middlewhere.Notification) { fmt.Println(n.Object, "entered") },
//	})
//
// The package is a facade: each subsystem lives in its own internal
// package (see DESIGN.md for the inventory), and the types here are
// aliases so applications need a single import.
package middlewhere

import (
	"middlewhere/internal/adapter"
	"middlewhere/internal/building"
	"middlewhere/internal/calibrate"
	"middlewhere/internal/core"
	"middlewhere/internal/fed"
	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/glob"
	"middlewhere/internal/model"
	"middlewhere/internal/mwql"
	"middlewhere/internal/mwrpc"
	"middlewhere/internal/obs"
	"middlewhere/internal/obs/cluster"
	"middlewhere/internal/rcc"
	"middlewhere/internal/registry"
	"middlewhere/internal/remote"
	"middlewhere/internal/rules"
	"middlewhere/internal/sim"
	"middlewhere/internal/spatialdb"
	"middlewhere/internal/topo"
)

// ---------------------------------------------------------------------------
// Location Service (the paper's §4)

type (
	// Service is the Location Service: the single source of location
	// information for applications. Create with New; Close when done.
	Service = core.Service
	// Location is the consolidated answer to "where is X?".
	Location = core.Location
	// Notification is delivered when a subscribed condition becomes
	// true.
	Notification = core.Notification
	// Subscription configures a region-based notification.
	Subscription = core.Subscription
	// PrivacyPolicy limits how precisely an object's location is
	// revealed.
	PrivacyPolicy = core.PrivacyPolicy
	// AccessPolicy is a per-requester disclosure policy (§4.5).
	AccessPolicy = core.AccessPolicy
	// RegionProb is one cell of a spatial probability distribution.
	RegionProb = core.RegionProb
	// ServiceOption configures New.
	ServiceOption = core.Option
)

// New builds a Location Service over a building model.
func New(b *Building, opts ...ServiceOption) (*Service, error) {
	return core.New(b, opts...)
}

// WithClock injects a time source (tests and simulations).
var WithClock = core.WithClock

// WithHistory records a bounded trail of fused estimates per object,
// queryable with Service.History.
var WithHistory = core.WithHistory

// WithParallelism caps the query worker pool (0 = GOMAXPROCS, 1 =
// serial evaluation).
var WithParallelism = core.WithParallelism

// WithCacheQuantum sets how long a fused-location cache entry may
// serve queries at a later wall-clock instant (0 = exact-instant
// hits only).
var WithCacheQuantum = core.WithCacheQuantum

// Service errors.
var (
	ErrUnknownObject = core.ErrUnknownObject
	ErrBadSub        = core.ErrBadSub
)

// Health reporting (the fault-tolerance heartbeat).
type (
	// Health is the Location Service's heartbeat snapshot.
	Health = core.Health
	// HealthState classifies a component: Healthy, Degraded, or Down.
	HealthState = core.HealthState
)

// Health states.
const (
	Healthy  = core.Healthy
	Degraded = core.Degraded
	Down     = core.Down
)

// ---------------------------------------------------------------------------
// Buildings and physical space (§5)

type (
	// Building bundles coordinate frames, the universe rectangle, the
	// object table rows, and doors.
	Building = building.Building
	// DoorSpec connects two regions with a door.
	DoorSpec = building.DoorSpec
	// SpatialObject is a row of the physical-space table (Table 1).
	SpatialObject = spatialdb.Object
	// ObjectFilter narrows spatial-database object queries.
	ObjectFilter = spatialdb.ObjectFilter
	// SpatialDB is the spatial database (PostGIS substitute).
	SpatialDB = spatialdb.DB
)

// PaperFloor returns the floor of the paper's Figure 8 / Table 1.
func PaperFloor() *Building { return building.PaperFloor() }

// SyntheticBuilding generates a rows x cols grid floor for experiments.
func SyntheticBuilding(name string, rows, cols int, roomW, roomH, corridorH float64) *Building {
	return building.Synthetic(name, rows, cols, roomW, roomH, corridorH)
}

// MultiStoreyBuilding generates a building with several identical
// floors connected by stairwells, each floor in its own coordinate
// frame (§3's hierarchical coordinate systems).
func MultiStoreyBuilding(name string, floors, rows, cols int, roomW, roomH, corridorH float64) *Building {
	return building.MultiStorey(name, floors, rows, cols, roomW, roomH, corridorH)
}

// LoadPlan reads a JSON floor plan; SavePlan is the method on
// *Building.
var LoadPlan = building.LoadPlan

// ---------------------------------------------------------------------------
// Location model (§3)

type (
	// GLOB is the hierarchical Gaia LOcation Byte-string.
	GLOB = glob.GLOB
	// Granularity names a reveal depth (building/floor/room).
	Granularity = glob.Granularity
	// Point is a planar position.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (MBR).
	Rect = geom.Rect
	// Polygon is a simple polygon.
	Polygon = geom.Polygon
)

// Granularity levels for privacy policies and co-location queries.
const (
	GranBuilding = glob.GranBuilding
	GranFloor    = glob.GranFloor
	GranRoom     = glob.GranRoom
)

// ParseGLOB parses the textual GLOB form.
var ParseGLOB = glob.Parse

// MustParseGLOB parses a GLOB and panics on error (literals, tests).
var MustParseGLOB = glob.MustParse

// SymbolicGLOB builds a symbolic GLOB from path segments.
var SymbolicGLOB = glob.Symbolic

// CoordPointGLOB builds a coordinate point GLOB under a prefix.
var CoordPointGLOB = glob.CoordinatePoint

// CoordRectGLOB builds a coordinate polygon GLOB for an MBR.
var CoordRectGLOB = glob.CoordinateRect

// Pt builds a Point.
var Pt = geom.Pt

// R builds a Rect from two corners.
var R = geom.R

// ---------------------------------------------------------------------------
// Quality model and readings (§3.2, §4.1.1)

type (
	// Reading is one sensor observation in the common representation.
	Reading = model.Reading
	// SensorSpec is a sensor technology's calibration record.
	SensorSpec = model.SensorSpec
	// ErrorModel carries the x/y/z probabilities of §4.1.1.
	ErrorModel = model.ErrorModel
	// TDF is a temporal degradation function.
	TDF = model.TDF
	// LinearTDF degrades confidence linearly over a span.
	LinearTDF = model.LinearTDF
	// ExponentialTDF degrades confidence with a half-life.
	ExponentialTDF = model.ExponentialTDF
	// StepTDF degrades confidence in discrete steps.
	StepTDF = model.StepTDF
	// ConstantTDF never degrades confidence.
	ConstantTDF = model.ConstantTDF
)

// Paper-calibrated sensor specs (§6, plus the §1.1 technologies).
var (
	UbisenseSpec       = model.UbisenseSpec
	RFIDSpec           = model.RFIDSpec
	BiometricShortSpec = model.BiometricShortSpec
	BiometricLongSpec  = model.BiometricLongSpec
	GPSSpec            = model.GPSSpec
	CardReaderSpec     = model.CardReaderSpec
	BluetoothSpec      = model.BluetoothSpec
	DesktopLoginSpec   = model.DesktopLoginSpec
)

// ---------------------------------------------------------------------------
// Probability bands (§4.4)

// Band classifies a probability against the deployed sensors.
type Band = fusion.Band

// The four §4.4 probability bands.
const (
	BandLow      = fusion.BandLow
	BandMedium   = fusion.BandMedium
	BandHigh     = fusion.BandHigh
	BandVeryHigh = fusion.BandVeryHigh
)

// ---------------------------------------------------------------------------
// Spatial relations (§4.6)

type (
	// RCCRelation is an RCC-8 base relation between regions.
	RCCRelation = rcc.Relation
	// Passage refines external connection (free/restricted/none).
	Passage = rcc.Passage
	// TraversalPolicy says which passages routes may use.
	TraversalPolicy = topo.TraversalPolicy
	// Route is a traversable path between regions.
	Route = topo.Route
	// RuleEngine is the Datalog engine for reasoning over derived
	// spatial facts.
	RuleEngine = rules.Engine
)

// RCC-8 relations.
const (
	DC    = rcc.DC
	EC    = rcc.EC
	PO    = rcc.PO
	TPP   = rcc.TPP
	NTPP  = rcc.NTPP
	TPPi  = rcc.TPPi
	NTPPi = rcc.NTPPi
	EQ    = rcc.EQ
)

// Passage kinds.
const (
	PassageNone       = rcc.PassageNone
	PassageRestricted = rcc.PassageRestricted
	PassageFree       = rcc.PassageFree
)

// Traversal policies.
const (
	FreeOnly        = topo.FreeOnly
	AllowRestricted = topo.AllowRestricted
)

// ---------------------------------------------------------------------------
// Adapters (§6)

type (
	// AdapterOptions carries the programmable filter/rate knobs.
	AdapterOptions = adapter.Options
	// UbisenseAdapter wraps the UWB tag technology.
	UbisenseAdapter = adapter.Ubisense
	// RFIDAdapter wraps an RF badge base station.
	RFIDAdapter = adapter.RFID
	// BiometricAdapter wraps a fingerprint/login device.
	BiometricAdapter = adapter.Biometric
	// GPSAdapter wraps a GPS receiver.
	GPSAdapter = adapter.GPS
	// CardReaderAdapter wraps a door badge reader.
	CardReaderAdapter = adapter.CardReader
	// GeoReference anchors geodetic coordinates to a building frame.
	GeoReference = adapter.GeoReference
	// BluetoothAdapter wraps a Bluetooth inquiry-scanning station.
	BluetoothAdapter = adapter.Bluetooth
	// DesktopLoginAdapter wraps workstation session events.
	DesktopLoginAdapter = adapter.DesktopLogin
)

// Adapter constructors.
var (
	NewUbisense     = adapter.NewUbisense
	NewRFID         = adapter.NewRFID
	NewBiometric    = adapter.NewBiometric
	NewGPS          = adapter.NewGPS
	NewCardReader   = adapter.NewCardReader
	NewBluetooth    = adapter.NewBluetooth
	NewDesktopLogin = adapter.NewDesktopLogin
)

// Graceful degradation for adapters feeding a remote sink.
type (
	// ResilientSink wraps any sink with a bounded buffer and a circuit
	// breaker so sink outages degrade instead of erroring into device
	// code.
	ResilientSink = adapter.ResilientSink
	// ResilientOptions tunes a ResilientSink.
	ResilientOptions = adapter.ResilientOptions
	// ResilientStats counts forwarded/buffered/dropped readings.
	ResilientStats = adapter.ResilientStats
	// DropPolicy picks the overflow victim (DropOldest/DropNewest).
	DropPolicy = adapter.DropPolicy
	// BatchSink ingests a slice of readings in one call (Service,
	// RemoteClient, and ResilientSink all satisfy it).
	BatchSink = adapter.BatchSink
	// Batcher accumulates readings and forwards them in batches.
	Batcher = adapter.Batcher
)

// NewResilientSink wraps a sink with buffering and a circuit breaker.
var NewResilientSink = adapter.NewResilientSink

// NewBatcher wraps a batch-capable sink with batched forwarding.
var NewBatcher = adapter.NewBatcher

// Overflow drop policies.
const (
	DropOldest = adapter.DropOldest
	DropNewest = adapter.DropNewest
)

// ---------------------------------------------------------------------------
// Simulation (hardware substitute)

type (
	// Sim is the building simulator with ground truth.
	Sim = sim.Sim
	// SimConfig tunes the simulation.
	SimConfig = sim.Config
	// PersonState is a ground-truth snapshot of a simulated person.
	PersonState = sim.PersonState
	// Observer is a simulated sensor installation.
	Observer = sim.Observer
	// UbisenseField simulates UWB coverage.
	UbisenseField = sim.UbisenseField
	// RFIDStation simulates an RF badge base station.
	RFIDStation = sim.RFIDStation
	// CardReaderDoor simulates a badge reader on a door.
	CardReaderDoor = sim.CardReaderDoor
	// BiometricDesk simulates a login station.
	BiometricDesk = sim.BiometricDesk
	// GPSSatellites simulates GPS coverage over an outdoor area.
	GPSSatellites = sim.GPSSatellites
)

// Simulation constructors.
var (
	NewSim           = sim.New
	NewUbisenseField = sim.NewUbisenseField
	NewRFIDStation   = sim.NewRFIDStation
	NewBiometricDesk = sim.NewBiometricDesk
	NewGPSSatellites = sim.NewGPSSatellites
	RunSim           = sim.Run
	// RunSimTolerant keeps the simulation moving when an observer's
	// sink fails (counts errors instead of aborting).
	RunSimTolerant = sim.RunTolerant
	// RunSimBatched flushes a Batcher at each step boundary so a step's
	// readings land in one IngestBatch call.
	RunSimBatched = sim.RunBatched
)

// ---------------------------------------------------------------------------
// Distribution (§7: CORBA + Gaia Space Repository substitutes)

type (
	// RemoteServer publishes a Location Service over TCP.
	RemoteServer = remote.Server
	// RemoteClient is the application-side handle to a remote service.
	RemoteClient = remote.LocationClient
	// SubscribeArgs configures a remote subscription.
	SubscribeArgs = remote.SubscribeArgs
	// NotificationDTO is a notification received over the wire.
	NotificationDTO = remote.NotificationDTO
	// RemoteDialOptions tunes reconnection, backoff, and timeouts for
	// DialLocationOptions.
	RemoteDialOptions = remote.DialOptions
	// ConnState is the client link state (connected/reconnecting/closed).
	ConnState = remote.ConnState
	// ClientHealth summarizes the client side of the link.
	ClientHealth = remote.ClientHealth
	// HealthDTO is the service heartbeat received over the wire.
	HealthDTO = remote.HealthDTO
	// IngestStream pipelines reading batches to the daemon with
	// credit-based backpressure (RemoteClient.OpenIngestStream).
	IngestStream = remote.IngestStream
	// IngestStreamStats snapshots a stream's progress and credit window.
	IngestStreamStats = remote.StreamStats
	// RejectedReadingDTO is one per-reading rejection surfaced by
	// batched or streaming ingest.
	RejectedReadingDTO = remote.RejectedReadingDTO
	// RegistryServer is the service-discovery registry.
	RegistryServer = registry.Server
	// RegistryClient talks to a registry.
	RegistryClient = registry.Client
)

// Client link states.
const (
	StateConnected    = remote.StateConnected
	StateReconnecting = remote.StateReconnecting
	StateClosed       = remote.StateClosed
)

// ---------------------------------------------------------------------------
// Federation (floor shards across daemons)

type (
	// FedRouter federates floor shards across daemons: it leases this
	// daemon's floors in the registry's placement map, forwards ingest
	// to floor owners (with crash-safe object migration), and fans
	// region queries out across the map with explicit degradation.
	FedRouter = fed.Router
	// FedConfig parameterizes a federation router.
	FedConfig = fed.Config
	// FedQueryReply is a federated region scan's result: complete, or
	// explicitly partial with the unavailable shard keys listed.
	FedQueryReply = fed.QueryReply
	// FedShardsReply maps where every floor lives plus peer state.
	FedShardsReply = fed.ShardsReply
	// FedPeerState is one peer daemon's breaker/retry state.
	FedPeerState = fed.PeerState
	// FederationDTO is the federation block of the health heartbeat.
	FederationDTO = remote.FederationDTO
)

var (
	// NewFedRouter joins a service to a federation; attach the result
	// to the daemon's RemoteServer with SetFederation.
	NewFedRouter = fed.New
	// ErrFedUnavailable reports a strict-mode federated query that
	// could not reach every shard.
	ErrFedUnavailable = fed.ErrUnavailable
)

// WirePref selects the RPC framing a dialer or daemon offers: WireAuto
// negotiates binary with JSON fallback, WireJSON pins the JSON
// envelope, WireBinary demands the binary codec and fails the dial if
// the peer declines.
type WirePref = mwrpc.WirePref

// WireCodec reports which framing a connection actually negotiated
// (RemoteClient.WireCodec returns one).
type WireCodec = mwrpc.Codec

// Wire preferences and negotiated codecs.
const (
	WireAuto    = mwrpc.WireAuto
	WireJSON    = mwrpc.WireJSON
	WireBinary  = mwrpc.WireBinary
	CodecJSON   = mwrpc.CodecJSON
	CodecBinary = mwrpc.CodecBinary
)

// WireEnv is the environment knob ("MW_WIRE") the CI compat matrix
// sets: a single word applies to both sides, "client/daemon" splits
// them. ParseWire maps one word — "json", "binary" (negotiate), or
// "binary!" (strict) — to a preference; the cmd -wire flags route
// through it.
const WireEnv = mwrpc.WireEnv

// ParseWire maps a -wire / MW_WIRE knob word to a WirePref.
var ParseWire = mwrpc.ParseWire

// ErrNoCredit is IngestStream.Send's backpressure signal: the daemon's
// credit window is exhausted, retry after acks drain (ResilientSink
// and Batcher handle it automatically).
var ErrNoCredit = mwrpc.ErrNoCredit

// ErrStreamUnsupported reports a daemon that predates streaming
// ingest; fall back to RemoteClient.IngestBatch.
var ErrStreamUnsupported = remote.ErrStreamUnsupported

// Distribution constructors.
var (
	NewRemoteServer = remote.NewServer
	// DialLocation connects with default fault-tolerance settings
	// (bounded retries with backoff, session resumption on reconnect).
	DialLocation = remote.DialLocation
	// DialLocationOptions connects with explicit fault-tolerance
	// settings.
	DialLocationOptions = remote.DialLocationOptions
	NewRegistryServer   = registry.NewServer
	DialRegistry        = registry.Dial
)

// ---------------------------------------------------------------------------
// Spatial queries (§5.1's SQL-style queries over the object table)

// SpatialQuery is a parsed mwql statement.
type SpatialQuery = mwql.Query

// ParseQuery parses an mwql statement such as
// "SELECT objects WHERE prop('power-outlets') = 'yes' NEAREST (0,0) LIMIT 1".
var ParseQuery = mwql.Parse

// ExecQuery parses and runs an mwql statement against a spatial
// database.
var ExecQuery = mwql.Exec

// ---------------------------------------------------------------------------
// Calibration (the paper's §11 future work, implemented)

type (
	// CalibrationTrial is one ground-truth-labelled detection
	// opportunity.
	CalibrationTrial = calibrate.Trial
	// CalibrationEpisode summarizes a presence episode for carry-
	// probability estimation.
	CalibrationEpisode = calibrate.Episode
	// DecaySample is an empirical point for tdf fitting.
	DecaySample = calibrate.DecaySample
	// TDFFit is a fitted temporal degradation function.
	TDFFit = calibrate.TDFFit
	// YZEstimate carries estimated detection/misreport probabilities.
	YZEstimate = calibrate.YZEstimate
)

// Calibration estimators: detection model, carry probability (labelled
// and EM), tdf fitting, and full-spec assembly.
var (
	EstimateYZ            = calibrate.EstimateYZ
	EstimateCarryLabelled = calibrate.EstimateCarryLabelled
	EstimateCarryEM       = calibrate.EstimateCarryEM
	FitTDF                = calibrate.FitTDF
	CalibrateSpec         = calibrate.CalibrateSpec
)

// ---------------------------------------------------------------------------
// Observability (metrics, pipeline traces, debug server)

type (
	// ObsRegistry is a set of named counters, gauges, and latency
	// histograms; Default() holds the built-in instrumentation.
	ObsRegistry = obs.Registry
	// ObsTracer records per-reading pipeline traces.
	ObsTracer = obs.Tracer
	// ObsTrace is one reading's recorded trip through the pipeline.
	ObsTrace = obs.Trace
	// ObsSpan is one timed stage of a trace.
	ObsSpan = obs.Span
	// ObsDebugServer serves /metrics, /debug/traces, and pprof.
	ObsDebugServer = obs.DebugServer
	// StatsDTO is the observability snapshot returned by mw.stats.
	StatsDTO = remote.StatsDTO
	// HistogramDTO is a histogram snapshot on the wire.
	HistogramDTO = remote.HistogramDTO
	// TraceDTO is a pipeline trace on the wire.
	TraceDTO = remote.TraceDTO
	// SimReport summarizes a tolerant simulation run.
	SimReport = sim.RunReport
)

var (
	// EnableObservability turns span tracing on or off process-wide.
	// Metric counters and histograms always record (they are
	// allocation-free); tracing is the part worth gating.
	EnableObservability = obs.SetEnabled
	// ObservabilityEnabled reports whether span tracing is on.
	ObservabilityEnabled = obs.Enabled
	// ObsDefault returns the process-global metrics registry.
	ObsDefault = obs.Default
	// ObsDefaultTracer returns the process-global tracer.
	ObsDefaultTracer = obs.DefaultTracer
	// StartObsDebugServer serves /metrics, /debug/traces, and
	// /debug/pprof/* on addr (e.g. "127.0.0.1:7771").
	StartObsDebugServer = obs.StartDebugServer
	// ObsMetricsText renders a registry in the Prometheus text shape.
	ObsMetricsText = obs.MetricsTextString
	// SetObsDaemonLabel sets the daemon name stamped on trace spans
	// recorded in this process (the daemon's -name flag routes here).
	SetObsDaemonLabel = obs.SetDaemonLabel
)

// ---------------------------------------------------------------------------
// SLO tracking (windowed latency objectives over registry histograms)

type (
	// SLO is one windowed latency objective ("ingest p99 < 2ms over 1m").
	SLO = obs.SLO
	// SLOStatus is an objective's last windowed evaluation.
	SLOStatus = obs.SLOStatus
	// SLOTracker samples histograms on a cadence and evaluates the
	// objectives, exporting slo_* metrics.
	SLOTracker = obs.SLOTracker
	// SLODTO is one objective's evaluation in the health heartbeat.
	SLODTO = remote.SLODTO
)

var (
	// ParseSLOs parses the daemon's -slo flag syntax:
	// "ingest=p99<2ms,query=p99<10ms@30s".
	ParseSLOs = obs.ParseSLOs
	// NewSLOTracker builds a tracker; attach it to the daemon's
	// RemoteServer with SetSLOTracker so health replies carry it.
	NewSLOTracker = obs.NewSLOTracker
)

// ---------------------------------------------------------------------------
// Cluster observability (federated metric aggregation)

type (
	// ClusterDaemon is one scrape target of the cluster aggregator.
	ClusterDaemon = cluster.Daemon
	// ClusterScrape is one daemon's snapshot (or scrape error).
	ClusterScrape = cluster.Scrape
)

var (
	// ClusterFetch discovers a deployment's daemons via the registry,
	// scrapes each one's mw.stats, and merges: counters sum, version
	// gauges take the max, histograms merge bucket-wise (honest cluster
	// quantiles), traces join by ID into cross-daemon span trees.
	ClusterFetch = cluster.Fetch
	// ClusterDiscover lists a deployment's daemons from the registry.
	ClusterDiscover = cluster.Discover
	// ClusterScrapeAll scrapes a daemon set in parallel.
	ClusterScrapeAll = cluster.ScrapeAll
	// ClusterMerge folds scrapes into one snapshot plus the names of
	// unreachable daemons.
	ClusterMerge = cluster.Merge
	// ClusterMetricsHandler serves the merged snapshot as /metrics
	// exposition text (mwregistry mounts it at /metrics/cluster).
	ClusterMetricsHandler = cluster.MetricsHandler
)
