// Benchmarks regenerating the paper's evaluation artifacts and the
// ablations in DESIGN.md §5/§6. Run with:
//
//	go test -bench=. -benchmem
//
// Mapping to EXPERIMENTS.md:
//
//	F9 — BenchmarkTriggerResponse (full stack update→notification at
//	     several programmed-trigger counts; flat across counts)
//	E2 — BenchmarkLatticeBuild / BenchmarkLatticeInfer /
//	     BenchmarkProbRegion (fusion cost vs reading count)
//	E3 — BenchmarkRegionQueryRTree vs BenchmarkRegionQueryLinear
//	     (spatial index ablation vs object count)
//	E4 — BenchmarkContainmentMBR vs BenchmarkContainmentPolygon
//	E6 — BenchmarkNotifyFanout (subscriber scaling)
//	—  — BenchmarkLocateObject / BenchmarkIngest / BenchmarkRPCRoundTrip
//	     (the service's hot paths)
package middlewhere_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"middlewhere"
	"middlewhere/internal/bench"
	"middlewhere/internal/fusion"
	"middlewhere/internal/geom"
	"middlewhere/internal/rtree"
	"middlewhere/internal/rules"
)

// ---------------------------------------------------------------------------
// F9: trigger response over the full network stack

func BenchmarkTriggerResponse(b *testing.B) {
	for _, triggers := range []int{1, 10, 50, 100, 500} {
		b.Run(fmt.Sprintf("triggers-%d", triggers), func(b *testing.B) {
			// One warm series per b.N batch; the harness measures the
			// steady-state per-update latency.
			series, err := bench.TriggerResponse([]int{triggers}, b.N+1)
			if err != nil {
				b.Fatal(err)
			}
			// Report the mean steady-state latency as the metric.
			rest := series[0].UpdateLatencies[1:]
			b.ReportMetric(bench.Mean(rest), "us/notify")
		})
	}
}

// ---------------------------------------------------------------------------
// E2: fusion lattice cost vs number of readings

func fusionReadings(n int, rng *rand.Rand) []fusion.Reading {
	out := make([]fusion.Reading, n)
	for i := range out {
		x, y := rng.Float64()*80, rng.Float64()*80
		out[i] = fusion.Reading{
			ID:   fmt.Sprintf("s%d", i),
			Rect: geom.R(x, y, x+5+rng.Float64()*15, y+5+rng.Float64()*15),
			P:    0.6 + rng.Float64()*0.4,
			Q:    rng.Float64() * 0.01,
		}
	}
	return out
}

func BenchmarkLatticeBuild(b *testing.B) {
	universe := geom.R(0, 0, 100, 100)
	for _, n := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("readings-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			readings := fusionReadings(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := fusion.Build(universe, readings)
				l.Evaluate()
			}
		})
	}
}

func BenchmarkLatticeInfer(b *testing.B) {
	universe := geom.R(0, 0, 100, 100)
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("readings-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			readings := fusionReadings(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l := fusion.Build(universe, readings)
				if _, err := l.Infer(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProbRegion(b *testing.B) {
	universe := geom.R(0, 0, 100, 100)
	region := geom.R(30, 30, 60, 60)
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("readings-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			readings := fusionReadings(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fusion.ProbRegion(universe, readings, region)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E3: R-tree vs linear scan (the PostGIS-index ablation)

type rectEntry struct {
	r  geom.Rect
	id string
}

func randomRects(n int, rng *rand.Rand) []rectEntry {
	out := make([]rectEntry, n)
	for i := range out {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		out[i] = rectEntry{
			r:  geom.R(x, y, x+1+rng.Float64()*20, y+1+rng.Float64()*20),
			id: fmt.Sprintf("o%d", i),
		}
	}
	return out
}

func BenchmarkRegionQueryRTree(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("objects-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			entries := randomRects(n, rng)
			tr := rtree.New()
			for _, e := range entries {
				tr.Insert(e.r, e.id)
			}
			query := geom.R(400, 400, 450, 450)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.SearchIntersect(query)
			}
		})
	}
}

func BenchmarkRegionQueryLinear(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("objects-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			entries := randomRects(n, rng)
			query := geom.R(400, 400, 450, 450)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var hits []string
				for _, e := range entries {
					if e.r.Intersects(query) {
						hits = append(hits, e.id)
					}
				}
				_ = hits
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E4: MBR vs exact polygon containment

var lRoom = geom.Polygon{
	geom.Pt(0, 0), geom.Pt(40, 0), geom.Pt(40, 20),
	geom.Pt(20, 20), geom.Pt(20, 40), geom.Pt(0, 40),
}

func BenchmarkContainmentMBR(b *testing.B) {
	mbr := lRoom.Bounds()
	p := geom.Pt(30, 30) // in the notch: MBR says yes, polygon says no
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mbr.ContainsPoint(p)
	}
}

func BenchmarkContainmentPolygon(b *testing.B) {
	p := geom.Pt(30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lRoom.ContainsPoint(p)
	}
}

// ---------------------------------------------------------------------------
// E6: notification fan-out

func BenchmarkNotifyFanout(b *testing.B) {
	for _, subs := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("subscribers-%d", subs), func(b *testing.B) {
			bld := middlewhere.PaperFloor()
			now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
			svc, err := middlewhere.New(bld, middlewhere.WithClock(func() time.Time { return now }))
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			spec := middlewhere.UbisenseSpec(0.95)
			spec.TTL = time.Hour
			if err := svc.RegisterSensor("s", spec); err != nil {
				b.Fatal(err)
			}
			done := make(chan struct{}, subs*2)
			for i := 0; i < subs; i++ {
				_, err := svc.Subscribe(middlewhere.Subscription{
					Region:       middlewhere.MustParseGLOB("CS/Floor3/NetLab"),
					EveryReading: true,
					Handler:      func(middlewhere.Notification) { done <- struct{}{} },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			floor := middlewhere.MustParseGLOB("CS/Floor3")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := svc.Ingest(middlewhere.Reading{
					SensorID:  "s",
					MObjectID: "p",
					Location:  middlewhere.CoordPointGLOB(floor, middlewhere.Pt(370, 15)),
					Time:      now,
				})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < subs; j++ {
					<-done
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Service hot paths

func benchService(b *testing.B) *middlewhere.Service {
	b.Helper()
	bld := middlewhere.PaperFloor()
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	svc, err := middlewhere.New(bld, middlewhere.WithClock(func() time.Time { return now }))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	for i, spec := range []middlewhere.SensorSpec{
		middlewhere.UbisenseSpec(0.9),
		middlewhere.RFIDSpec(0.8),
	} {
		spec.TTL = time.Hour
		if err := svc.RegisterSensor(fmt.Sprintf("s%d", i), spec); err != nil {
			b.Fatal(err)
		}
	}
	floor := middlewhere.MustParseGLOB("CS/Floor3")
	for i := 0; i < 2; i++ {
		err := svc.Ingest(middlewhere.Reading{
			SensorID:  fmt.Sprintf("s%d", i),
			MObjectID: "alice",
			Location:  middlewhere.CoordPointGLOB(floor, middlewhere.Pt(370, 15)),
			Time:      now,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

func BenchmarkLocateObject(b *testing.B) {
	svc := benchService(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.LocateObject("alice"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbInRegionQuery(b *testing.B) {
	svc := benchService(b)
	region := middlewhere.MustParseGLOB("CS/Floor3/NetLab")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.ProbInRegion("alice", region); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngest(b *testing.B) {
	svc := benchService(b)
	floor := middlewhere.MustParseGLOB("CS/Floor3")
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := svc.Ingest(middlewhere.Reading{
			SensorID:  "s0",
			MObjectID: "bob",
			Location:  middlewhere.CoordPointGLOB(floor, middlewhere.Pt(float64(i%400)+10, 50)),
			Time:      now,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchRegionService populates a service with n mobile objects spread
// across the floor, one reading each.
func benchRegionService(b *testing.B, objects int, opts ...middlewhere.ServiceOption) *middlewhere.Service {
	b.Helper()
	bld := middlewhere.PaperFloor()
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	opts = append([]middlewhere.ServiceOption{middlewhere.WithClock(func() time.Time { return now })}, opts...)
	svc, err := middlewhere.New(bld, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	spec := middlewhere.UbisenseSpec(0.9)
	spec.TTL = time.Hour
	if err := svc.RegisterSensor("s0", spec); err != nil {
		b.Fatal(err)
	}
	floor := middlewhere.MustParseGLOB("CS/Floor3")
	rs := make([]middlewhere.Reading, objects)
	for i := range rs {
		rs[i] = middlewhere.Reading{
			SensorID:  "s0",
			MObjectID: fmt.Sprintf("p%d", i),
			Location:  middlewhere.CoordPointGLOB(floor, middlewhere.Pt(float64(i%480)+10, float64(i/480%80)+10)),
			Time:      now,
		}
	}
	if err := svc.IngestBatch(rs); err != nil {
		b.Fatal(err)
	}
	return svc
}

func benchObjectsInRegion(b *testing.B, opts ...middlewhere.ServiceOption) {
	region := middlewhere.MustParseGLOB("CS/Floor3/NetLab")
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("objects-%d", n), func(b *testing.B) {
			svc := benchRegionService(b, n, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.ObjectsInRegion(region, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkObjectsInRegionSerial(b *testing.B) {
	benchObjectsInRegion(b, middlewhere.WithParallelism(1))
}

// BenchmarkObjectsInRegionParallel pins four workers rather than
// relying on GOMAXPROCS so the pool path is exercised even on a
// single-CPU CI box; there the chunked fan-out should match serial
// within noise, and speed up per added core on real hardware.
func BenchmarkObjectsInRegionParallel(b *testing.B) {
	benchObjectsInRegion(b, middlewhere.WithParallelism(4))
}

func BenchmarkIngestBatch(b *testing.B) {
	floor := middlewhere.MustParseGLOB("CS/Floor3")
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	ids := make([]string, 8)
	for j := range ids {
		ids[j] = fmt.Sprintf("m%d", j)
	}
	for _, size := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			svc := benchService(b)
			batch := make([]middlewhere.Reading, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j] = middlewhere.Reading{
						SensorID:  "s0",
						MObjectID: ids[j%len(ids)],
						Location:  middlewhere.CoordPointGLOB(floor, middlewhere.Pt(float64((i+j)%400)+10, 50)),
						Time:      now,
					}
				}
				if err := svc.IngestBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "readings/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Multi-floor sharding: concurrent per-floor ingest and cross-shard
// region queries (EXPERIMENTS.md §PERF, BENCH_2.json)

// benchMultiFloorService builds a MultiStorey building and registers
// one sensor per floor (floors are named M/F0, M/F1, ... — the spatial
// database's shard keys).
func benchMultiFloorService(b *testing.B, floors int, opts ...middlewhere.ServiceOption) *middlewhere.Service {
	b.Helper()
	bld := middlewhere.MultiStoreyBuilding("M", floors, 4, 6, 12, 10, 5)
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	opts = append([]middlewhere.ServiceOption{middlewhere.WithClock(func() time.Time { return now })}, opts...)
	svc, err := middlewhere.New(bld, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	for f := 0; f < floors; f++ {
		spec := middlewhere.UbisenseSpec(0.9)
		spec.TTL = time.Hour
		if err := svc.RegisterSensor(fmt.Sprintf("f%d", f), spec); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

// multiFloorBatch builds one 64-reading batch for the given floor:
// eight mobile objects walking that floor, locations in the floor's
// local frame.
func multiFloorBatch(floor int) []middlewhere.Reading {
	glob := middlewhere.MustParseGLOB(fmt.Sprintf("M/F%d", floor))
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	batch := make([]middlewhere.Reading, 64)
	for j := range batch {
		batch[j] = middlewhere.Reading{
			SensorID:  fmt.Sprintf("f%d", floor),
			MObjectID: fmt.Sprintf("f%d-m%d", floor, j%8),
			Location:  middlewhere.CoordPointGLOB(glob, middlewhere.Pt(float64(j%60)+5, float64(j%50)+5)),
			Time:      now,
		}
	}
	return batch
}

// BenchmarkMultiFloorIngestBatch measures one 64-reading batch landing
// on each of `floors` floors concurrently: each op is one batch per
// floor, all in flight at once. With a single reading-table lock the
// per-op cost grows linearly with the floor count (every batch funnels
// through the same mutex); with per-floor shards independent floors
// stop contending.
func BenchmarkMultiFloorIngestBatch(b *testing.B) {
	for _, floors := range []int{1, 4} {
		b.Run(fmt.Sprintf("floors-%d", floors), func(b *testing.B) {
			svc := benchMultiFloorService(b, floors)
			batches := make([][]middlewhere.Reading, floors)
			for f := range batches {
				batches[f] = multiFloorBatch(f)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for f := 0; f < floors; f++ {
				wg.Add(1)
				go func(f int) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if err := svc.IngestBatch(batches[f]); err != nil {
							b.Error(err)
							return
						}
					}
				}(f)
			}
			wg.Wait()
			b.ReportMetric(float64(floors*64), "readings/op")
		})
	}
}

// BenchmarkObjectsInRegionMultiFloor queries one room while 4 floors
// hold 64 mobile objects each (256 total): the cross-shard fan-out
// path. Serial and parallel variants must return identical results
// (asserted by TestObjectsInRegionSerialParallelIdentical).
func BenchmarkObjectsInRegionMultiFloor(b *testing.B) {
	const floors = 4
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", 4}} {
		b.Run(mode.name, func(b *testing.B) {
			svc := benchMultiFloorService(b, floors, middlewhere.WithParallelism(mode.par))
			for f := 0; f < floors; f++ {
				floor := middlewhere.MustParseGLOB(fmt.Sprintf("M/F%d", f))
				now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
				rs := make([]middlewhere.Reading, 64)
				for j := range rs {
					rs[j] = middlewhere.Reading{
						SensorID:  fmt.Sprintf("f%d", f),
						MObjectID: fmt.Sprintf("f%d-p%d", f, j),
						Location:  middlewhere.CoordPointGLOB(floor, middlewhere.Pt(float64(j%60)+5, float64(j/12%50)+5)),
						Time:      now,
					}
				}
				if err := svc.IngestBatch(rs); err != nil {
					b.Fatal(err)
				}
			}
			region := middlewhere.MustParseGLOB("M/F2/r1c2")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.ObjectsInRegion(region, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadDuringRemoteFloorIngest measures reading-table query
// latency on floor 1 while floor 0 absorbs a continuous batch-ingest
// storm. This is the contention-isolation effect of per-floor shard
// locks, and it is visible even on a single CPU: with one global
// reading lock every query queues behind the in-flight batch's whole
// store phase, while with per-floor locks a query on an idle floor
// acquires its own lock immediately.
func BenchmarkReadDuringRemoteFloorIngest(b *testing.B) {
	svc := benchMultiFloorService(b, 2)
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	// Seed the probe object on floor 1, then storm floor 0.
	if err := svc.IngestBatch(multiFloorBatch(1)); err != nil {
		b.Fatal(err)
	}
	storm := multiFloorBatch(0)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := svc.IngestBatch(storm); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	db := svc.DB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := db.ReadingsFor("f1-m0", now); len(rows) == 0 {
			b.Fatal("probe object lost its readings")
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

func benchRPCStack(b *testing.B) *middlewhere.RemoteClient {
	b.Helper()
	bld := middlewhere.PaperFloor()
	svc, err := middlewhere.New(bld)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	srv := middlewhere.NewRemoteServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	c, err := middlewhere.DialLocation(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkRPCIngestBatch measures the batched ingest frame; size-1 is
// the single-reading baseline, so ns/op(size-64)/64 vs ns/op(size-1)
// is the per-reading saving from amortizing the round trip.
func BenchmarkRPCIngestBatch(b *testing.B) {
	floor := middlewhere.MustParseGLOB("CS/Floor3")
	for _, size := range []int{1, 64} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			c := benchRPCStack(b)
			spec := middlewhere.UbisenseSpec(0.9)
			spec.TTL = time.Hour
			if err := c.RegisterSensor("s0", spec); err != nil {
				b.Fatal(err)
			}
			now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
			batch := make([]middlewhere.Reading, size)
			for j := range batch {
				batch[j] = middlewhere.Reading{
					SensorID:  "s0",
					MObjectID: "bob",
					Location:  middlewhere.CoordPointGLOB(floor, middlewhere.Pt(float64(j%400)+10, 50)),
					Time:      now,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.IngestBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "readings/op")
		})
	}
}

func BenchmarkRPCRoundTrip(b *testing.B) {
	c := benchRPCStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Relate is a pure-compute call: measures the RPC overhead.
		if _, _, err := c.Relate("CS/Floor3/NetLab", "CS/Floor3/MainCorridor"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate benchmarks: rule engine, routing, query language

func BenchmarkDatalogReachability(b *testing.B) {
	for _, rooms := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("rooms-%d", rooms), func(b *testing.B) {
			bld := middlewhere.SyntheticBuilding("D", rooms/10+1, 10, 12, 10, 5)
			svc, err := middlewhere.New(bld)
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := svc.RuleEngine()
				if err := e.AddRule(rules.R(
					rules.A("reach", rules.V("X"), rules.V("Y")),
					rules.Pos(rules.A("ecfp", rules.V("X"), rules.V("Y"))),
				)); err != nil {
					b.Fatal(err)
				}
				if err := e.AddRule(rules.R(
					rules.A("reach", rules.V("X"), rules.V("Z")),
					rules.Pos(rules.A("reach", rules.V("X"), rules.V("Y"))),
					rules.Pos(rules.A("ecfp", rules.V("Y"), rules.V("Z"))),
				)); err != nil {
					b.Fatal(err)
				}
				if err := e.Evaluate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShortestRoute(b *testing.B) {
	for _, size := range []int{4, 10, 20} {
		b.Run(fmt.Sprintf("grid-%dx%d", size, size), func(b *testing.B) {
			bld := middlewhere.SyntheticBuilding("R", size, size, 12, 10, 5)
			g, err := bld.Graph()
			if err != nil {
				b.Fatal(err)
			}
			from := "R/F/r0c0"
			to := fmt.Sprintf("R/F/r%dc%d", size-1, size-1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.ShortestRoute(from, to, middlewhere.FreeOnly); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMWQL(b *testing.B) {
	bld := middlewhere.SyntheticBuilding("Q", 10, 10, 12, 10, 5)
	svc, err := middlewhere.New(bld)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	const query = `SELECT objects WHERE type = 'Room' AND near((60, 60), 40) NEAREST (0, 0) LIMIT 5`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := middlewhere.ExecQuery(svc.DB(), query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistribution(b *testing.B) {
	svc := benchService(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Distribution("alice"); err != nil {
			b.Fatal(err)
		}
	}
}
