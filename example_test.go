package middlewhere_test

import (
	"fmt"
	"time"

	"middlewhere"
)

// Example shows the minimal pull-mode flow: build the paper floor,
// report one UWB fix, and ask where the person is.
func Example() {
	bld := middlewhere.PaperFloor()
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	svc, err := middlewhere.New(bld, middlewhere.WithClock(func() time.Time { return now }))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()

	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("ubi-1", floor, 0.9, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := ubi.ReportFix("alice", middlewhere.Pt(370, 15), now); err != nil {
		fmt.Println(err)
		return
	}

	loc, err := svc.LocateObject("alice")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s p=%.2f\n", loc.Symbolic, loc.Prob)
	// Output: CS/Floor3/NetLab p=0.86
}

// ExampleService_Subscribe shows the push mode of §4.3: a region
// subscription fires when a person enters the NetLab.
func ExampleService_Subscribe() {
	bld := middlewhere.PaperFloor()
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	svc, err := middlewhere.New(bld, middlewhere.WithClock(func() time.Time { return now }))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()
	floor := middlewhere.MustParseGLOB("CS/Floor3")
	ubi, err := middlewhere.NewUbisense("ubi-1", floor, 0.9, svc, svc, middlewhere.AdapterOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}

	entered := make(chan middlewhere.Notification, 1)
	_, err = svc.Subscribe(middlewhere.Subscription{
		Region:  middlewhere.MustParseGLOB("CS/Floor3/NetLab"),
		MinProb: 0.4,
		Handler: func(n middlewhere.Notification) { entered <- n },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := ubi.ReportFix("bob", middlewhere.Pt(370, 15), now); err != nil {
		fmt.Println(err)
		return
	}
	n := <-entered
	fmt.Printf("%s entered the NetLab\n", n.Object)
	// Output: bob entered the NetLab
}

// ExampleExecQuery runs the paper's §5.1 example query over the
// spatial database.
func ExampleExecQuery() {
	svc, err := middlewhere.New(middlewhere.PaperFloor())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()
	objs, err := middlewhere.ExecQuery(svc.DB(), `SELECT objects
		WHERE prop('power-outlets') = 'yes' AND prop('bluetooth') = 'high'
		NEAREST (0, 0) LIMIT 1`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(objs[0].ID())
	// Output: CS/Floor3/NetLab
}

// ExampleService_RouteBetween finds a walkable route, honoring the
// card-controlled door into room 3105.
func ExampleService_RouteBetween() {
	svc, err := middlewhere.New(middlewhere.PaperFloor())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer svc.Close()
	from := middlewhere.MustParseGLOB("CS/Floor3/NetLab")
	to := middlewhere.MustParseGLOB("CS/Floor3/3105")
	if _, err := svc.RouteBetween(from, to, middlewhere.FreeOnly); err != nil {
		fmt.Println("no free route; trying with a badge")
	}
	rt, err := svc.RouteBetween(from, to, middlewhere.AllowRestricted)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rt.Regions)
	// Output:
	// no free route; trying with a badge
	// [CS/Floor3/NetLab CS/Floor3/MainCorridor CS/Floor3/3105]
}
